package pipeline

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/trace"
)

// warmRun warms a fresh core on warm and measures slice on it.
func warmRun(t *testing.T, warm, slice *trace.Trace, pred mdp.Predictor, opt Options) *statsRun {
	t.Helper()
	c, err := New(config.AlderLake(), pred, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WarmContext(context.Background(), warm); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(slice)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWarmStartDeterministic: warming the same window and measuring the same
// slice must produce byte-identical counters run over run — the property the
// interval-parallel stitcher relies on for Workers=1 vs Workers=N equality.
func TestWarmStartDeterministic(t *testing.T) {
	tr := appTrace(t, "511.povray", 24000)
	warm := tr.Slice(trace.Interval{Start: 4000, End: 12000})
	slice := tr.Slice(trace.Interval{Start: 12000, End: 24000})
	a := warmRun(t, warm, slice, core.NewDefault(), DefaultOptions())
	b := warmRun(t, warm, slice, core.NewDefault(), DefaultOptions())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("warm-started runs differ:\n%+v\n%+v", a, b)
	}
	if a.Committed != uint64(slice.Len()) {
		t.Fatalf("measured slice committed %d, want %d", a.Committed, slice.Len())
	}
}

// TestWarmStartReportsSliceOnly: the measured run's counters must be scoped
// to the slice — no warm-up cycles, branches or cache traffic leak in.
func TestWarmStartReportsSliceOnly(t *testing.T) {
	tr := appTrace(t, "502.gcc_1", 24000)
	warm := tr.Slice(trace.Interval{Start: 0, End: 12000})
	slice := tr.Slice(trace.Interval{Start: 12000, End: 24000})
	warmed := warmRun(t, warm, slice, core.NewDefault(), DefaultOptions())
	// Reference scale: the same slice on a cold core. Counters won't match
	// (that is the point of warming), but they must be the same order of
	// magnitude — a leaked baseline would roughly double cycles/branches.
	cold := run(t, slice, core.NewDefault(), DefaultOptions()).res
	if warmed.Cycles == 0 || warmed.Cycles > 2*cold.Cycles {
		t.Fatalf("warm-started cycles %d out of range (cold slice: %d)", warmed.Cycles, cold.Cycles)
	}
	if warmed.Branches > cold.Branches {
		t.Fatalf("warm-started branches %d > cold %d: warm-up window leaked into the measured run",
			warmed.Branches, cold.Branches)
	}
	if warmed.Committed != cold.Committed {
		t.Fatalf("committed %d, want %d", warmed.Committed, cold.Committed)
	}
}

// TestWarmEmptyIsFresh: warming with a zero-length window must leave the
// core bit-identical to a fresh one.
func TestWarmEmptyIsFresh(t *testing.T) {
	tr := appTrace(t, "541.leela", 16000)
	empty := tr.Slice(trace.Interval{Start: 0, End: 0})
	warmed := warmRun(t, empty, tr, core.NewDefault(), DefaultOptions())
	fresh := run(t, tr, core.NewDefault(), DefaultOptions()).res
	if !reflect.DeepEqual(warmed, fresh) {
		t.Fatalf("empty warm-up changed the run:\n%+v\n%+v", warmed, fresh)
	}
}

// TestWarmStartReusableCore: a pooled core that ran a warm-started interval
// must Reset back to bit-identical fresh behavior.
func TestWarmStartReusableCore(t *testing.T) {
	tr := appTrace(t, "519.lbm", 16000)
	warm := tr.Slice(trace.Interval{Start: 0, End: 8000})
	slice := tr.Slice(trace.Interval{Start: 8000, End: 16000})
	c, err := New(config.AlderLake(), core.NewDefault(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WarmContext(context.Background(), warm); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(slice); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(core.NewDefault()); err != nil {
		t.Fatal(err)
	}
	after, err := c.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	fresh := run(t, tr, core.NewDefault(), DefaultOptions()).res
	if !reflect.DeepEqual(after, fresh) {
		t.Fatalf("reset after a warm-started run is not fresh:\n%+v\n%+v", after, fresh)
	}
}
