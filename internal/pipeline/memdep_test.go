package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/trace"
)

// TestPartialCoverageHandCrafted builds the minimal multi-store shape: two
// 4-byte stores under one 8-byte load. The load can never forward from a
// single store; it must wait until the covering stores drain to the cache,
// and with the oracle it must neither violate nor report a false
// dependence.
func TestPartialCoverageHandCrafted(t *testing.T) {
	const addr = 0x2000
	var insts []isa.Inst
	for i := 0; i < 200; i++ {
		insts = append(insts,
			isa.Inst{PC: 0x100, Kind: isa.ALU, Dst: 5, Lat: 8},
			isa.Inst{PC: 0x104, Kind: isa.Store, SrcA: 5, Addr: addr, Size: 4},
			isa.Inst{PC: 0x108, Kind: isa.Store, SrcA: 5, Addr: addr + 4, Size: 4},
			isa.Inst{PC: 0x10c, Kind: isa.Load, Dst: 1, Addr: addr, Size: 8},
			isa.Inst{PC: 0x110, Kind: isa.ALU, Dst: 9, SrcA: 9, SrcB: 1, Lat: 1},
		)
	}
	tr := &trace.Trace{Name: "partial", Insts: insts}
	r := run(t, tr, mdp.NewIdeal(), DefaultOptions())
	if r.res.MemOrderViolations != 0 || r.res.FalseDependencies != 0 {
		t.Errorf("oracle on partial coverage: FN=%d FP=%d",
			r.res.MemOrderViolations, r.res.FalseDependencies)
	}
	if r.res.Forwards != 0 {
		t.Errorf("no single store covers the load; forwards = %d", r.res.Forwards)
	}
	if r.res.Committed != uint64(len(insts)) {
		t.Errorf("committed %d/%d", r.res.Committed, len(insts))
	}
}

// TestForwardingWaitsForStoreData: a covering store whose *data* is late
// must delay the dependent load until the data exists (no value can be
// forwarded before it is produced).
func TestForwardingWaitsForStoreData(t *testing.T) {
	const addr = 0x3000
	slow := []isa.Inst{}
	fast := []isa.Inst{}
	for i := 0; i < 200; i++ {
		// Variant A: store data produced by a 20-cycle chain.
		slow = append(slow,
			isa.Inst{PC: 0x100, Kind: isa.ALU, Dst: 6, Lat: 20},
			isa.Inst{PC: 0x104, Kind: isa.Store, SrcB: 6, Addr: addr, Size: 8},
			isa.Inst{PC: 0x108, Kind: isa.Load, Dst: 1, Addr: addr, Size: 8},
			isa.Inst{PC: 0x10c, Kind: isa.ALU, Dst: 9, SrcA: 9, SrcB: 1, Lat: 1},
		)
		// Variant B: store data ready immediately.
		fast = append(fast,
			isa.Inst{PC: 0x100, Kind: isa.ALU, Dst: 6, Lat: 1},
			isa.Inst{PC: 0x104, Kind: isa.Store, SrcB: 6, Addr: addr, Size: 8},
			isa.Inst{PC: 0x108, Kind: isa.Load, Dst: 1, Addr: addr, Size: 8},
			isa.Inst{PC: 0x10c, Kind: isa.ALU, Dst: 9, SrcA: 9, SrcB: 1, Lat: 1},
		)
	}
	slowRes := run(t, &trace.Trace{Name: "slowdata", Insts: slow}, mdp.NewIdeal(), DefaultOptions())
	fastRes := run(t, &trace.Trace{Name: "fastdata", Insts: fast}, mdp.NewIdeal(), DefaultOptions())
	if slowRes.res.Cycles <= fastRes.res.Cycles {
		t.Errorf("late store data must cost cycles: slow %d vs fast %d",
			slowRes.res.Cycles, fastRes.res.Cycles)
	}
	if slowRes.res.Forwards == 0 || fastRes.res.Forwards == 0 {
		t.Error("both variants should forward")
	}
}

// TestStoreBufferBoundsCommit: a burst of stores larger than the store
// buffer must stall commit rather than lose stores; everything still
// commits and drains.
func TestStoreBufferBoundsCommit(t *testing.T) {
	m := config.AlderLake()
	var insts []isa.Inst
	for i := 0; i < m.SQ*3; i++ {
		insts = append(insts, isa.Inst{
			PC: 0x100, Kind: isa.Store, Addr: uint64(0x4000 + i*64), Size: 8,
		})
	}
	insts = append(insts, isa.Inst{PC: 0x200, Kind: isa.Nop})
	tr := &trace.Trace{Name: "burst", Insts: insts}
	r := run(t, tr, mdp.NewIdeal(), DefaultOptions())
	if r.res.Committed != uint64(len(insts)) {
		t.Errorf("committed %d/%d", r.res.Committed, len(insts))
	}
	if r.res.Stores != uint64(m.SQ*3) {
		t.Errorf("stores %d", r.res.Stores)
	}
}

// TestNopsFlowThrough: nops must not consume issue resources or block
// commit.
func TestNopsFlowThrough(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 5000; i++ {
		insts = append(insts, isa.Inst{PC: uint64(0x100 + i*4), Kind: isa.Nop})
	}
	tr := &trace.Trace{Name: "nops", Insts: insts}
	r := run(t, tr, mdp.NewIdeal(), DefaultOptions())
	if r.res.Committed != 5000 {
		t.Errorf("committed %d", r.res.Committed)
	}
	// 12-wide commit on pure nops: should be fast.
	if r.res.IPC() < 4 {
		t.Errorf("nop IPC %.2f suspiciously low", r.res.IPC())
	}
}

// TestDistancePredictionForwards: a correct distance prediction must lead
// to store-to-load forwarding, not a cache access, for a covered load.
func TestDistancePredictionForwards(t *testing.T) {
	tr := appTrace(t, "548.exchange2", 30000)
	ph := run(t, tr, corePHAST(), DefaultOptions())
	id := run(t, tr, mdp.NewIdeal(), DefaultOptions())
	// PHAST should forward nearly as much as the oracle once warm.
	if ph.res.Forwards*10 < id.res.Forwards*9 {
		t.Errorf("PHAST forwards %d vs ideal %d", ph.res.Forwards, id.res.Forwards)
	}
}
