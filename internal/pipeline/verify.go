package pipeline

import "repro/internal/isa"

// This file is the pipeline side of the differential verification oracle
// (internal/oracle): an optional retirement-stream tap that reports, for
// every committed micro-op, where the architectural value of each loaded
// byte came from. The tap is nil by default and every capture site is
// gated on a single pointer test, so the default hot path pays nothing
// (held by the BENCH.json regression gate).
//
// The contract with the checker: the pipeline records, at the cycle a load
// actually executes, the *architectural source* of each loaded byte as the
// micro-architecture obtained it — the dynamic trace index of the store it
// forwarded from (store queue or store buffer), or the last store drained
// into the cache hierarchy covering that byte (-1 when the byte still holds
// initial memory). A load that executed speculatively past an unresolved
// older store captures the stale source; if the mis-speculation machinery
// (forwarding filter, SVW) works, the load squashes and re-executes before
// commit and the capture is overwritten. A silent forwarding or wakeup bug
// leaves the stale capture in place, and the in-order oracle flags it at
// retirement.

// CommitEvent describes one retired micro-op to an Options.Verify callback.
// The struct and the Providers slice are reused across events; callbacks
// must not retain either past the call.
type CommitEvent struct {
	// Cycle is the commit cycle.
	Cycle uint64
	// TraceIdx is the dynamic trace index of the retiring micro-op.
	// Commits are architecturally in order, so a correct pipeline retires
	// consecutive indices.
	TraceIdx int
	// Providers holds, for a retired load, the per-byte source of the
	// loaded value as the pipeline obtained it: the trace index of the
	// providing store, or -1 for initial memory. Its length is the load's
	// Size; nil for non-loads.
	Providers []int32
}

// CommitCheck observes the retirement stream. Returning a non-nil error
// aborts the run; pipeline.RunContext returns that error verbatim.
type CommitCheck func(ev *CommitEvent) error

// OptionsKey is the comparable identity of an Options value — every field
// except the Verify callback (func values cannot be map keys). Core pools
// keyed by machine and options use it.
type OptionsKey struct {
	Filter          FilterMode
	BranchPredictor string
	HistCap         int
	TrainAtDetect   bool
	MaxCycles       uint64
	WatchdogCycles  uint64
}

// Key returns the comparable identity of o.
func (o Options) Key() OptionsKey {
	return OptionsKey{
		Filter:          o.Filter,
		BranchPredictor: o.BranchPredictor,
		HistCap:         o.HistCap,
		TrainAtDetect:   o.TrainAtDetect,
		MaxCycles:       o.MaxCycles,
		WatchdogCycles:  o.WatchdogCycles,
	}
}

// provSlot returns the (resized) provider capture buffer for a load's ROB
// slot. Slots are overwritten on every execution, so a squashed and
// re-dispatched load never retires a stale capture.
func (c *Core) provSlot(e *robEntry) []int32 {
	slot := e.seq & c.robMask
	p := c.vprov[slot]
	n := int(e.inst.Size)
	if cap(p) < n {
		p = make([]int32, n)
	} else {
		p = p[:n]
	}
	c.vprov[slot] = p
	return p
}

// captureForward records a fully-forwarded load: every byte comes from the
// store at the given trace index.
func (c *Core) captureForward(e *robEntry, storeTraceIdx int) {
	p := c.provSlot(e)
	v := int32(storeTraceIdx)
	for i := range p {
		p[i] = v
	}
}

// captureMemRead records a load served by the cache hierarchy: each byte
// comes from the last store drained over it (-1 = initial memory). Reading
// the drained map at execute time is the point — a load that ran ahead of
// an unresolved older store captures the stale pre-store source, and only a
// successful squash-and-re-execute replaces it.
func (c *Core) captureMemRead(e *robEntry) {
	p := c.provSlot(e)
	addr := e.inst.Addr
	for i := range p {
		if w, ok := c.vdrained[addr+uint64(i)]; ok {
			p[i] = w
		} else {
			p[i] = -1
		}
	}
}

// noteDrained marks a freed store-buffer entry's bytes as present in the
// cache hierarchy. Drains free strictly in program order, so the map always
// holds the youngest drained writer per byte.
func (c *Core) noteDrained(e *sbEntry) {
	for a := e.addr; a < e.addr+uint64(e.size); a++ {
		c.vdrained[a] = int32(e.traceIdx)
	}
}

// verifyCommit reports one retiring micro-op to the Options.Verify
// callback. Called only when the callback is non-nil.
func (c *Core) verifyCommit(e *robEntry) error {
	ev := &c.vev
	ev.Cycle = c.cycle
	ev.TraceIdx = e.traceIdx
	ev.Providers = nil
	if e.kind == isa.Load {
		ev.Providers = c.vprov[e.seq&c.robMask]
	}
	return c.opt.Verify(ev)
}
