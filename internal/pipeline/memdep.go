package pipeline

import (
	"repro/internal/isa"
	"repro/internal/mdp"
)

// This file implements the memory dependence machinery: the oracle scan
// that feeds the Ideal predictor, the prediction-driven issue gates, the
// store-queue/store-buffer search with store-to-load forwarding, and the
// load-queue search a resolving store performs to detect memory order
// violations (with the §IV-A1 forwarding filter).

// oracleDep finds the youngest older in-flight store whose footprint
// overlaps the dispatching load, using the simulator's exact knowledge of
// addresses. Only the Ideal predictor consumes the result.
func (c *Core) oracleDep(ld *robEntry) (bool, int) {
	for i := len(c.sq) - 1; i >= 0; i-- {
		st := c.entry(c.sq[i])
		if st.inst.Overlaps(ld.inst) {
			return true, int(ld.storeCount - 1 - st.storeIndex)
		}
	}
	return false, 0
}

// storeBySQIndex returns the in-flight store with the given global store
// allocation index, or nil if it has already committed (or was never
// dispatched). Store queue order makes this a direct offset.
func (c *Core) storeBySQIndex(idx uint64) *robEntry {
	if len(c.sq) == 0 {
		return nil
	}
	first := c.entry(c.sq[0]).storeIndex
	if idx < first || idx >= first+uint64(len(c.sq)) {
		return nil
	}
	return c.entry(c.sq[idx-first])
}

// storeDone reports whether a store micro-op has fully executed.
func (c *Core) storeDone(st *robEntry) bool {
	return st.state == stIssued && c.cycle >= st.doneAt
}

// gateBlocked evaluates the load's MDP decision: true while the load must
// keep waiting. It records the waited-for store's footprint so commit can
// classify the wait as a true or false dependence.
func (c *Core) gateBlocked(e *robEntry) bool {
	switch e.pred.Kind {
	case mdp.NoDep:
		return false
	case mdp.Distance:
		if uint64(e.pred.Dist) >= e.storeCount {
			return false // distance reaches before the stream start
		}
		st := c.storeBySQIndex(e.storeCount - 1 - uint64(e.pred.Dist))
		if st == nil || st.seq >= e.seq {
			return false // already committed (or nonsense prediction)
		}
		e.waitValid, e.waitAddr, e.waitSize = true, st.inst.Addr, st.inst.Size
		return !c.storeDone(st)
	case mdp.StoreSeq:
		if e.pred.Seq == 0 || e.pred.Seq < c.headSeq || e.pred.Seq >= e.seq {
			return false
		}
		st := c.entry(e.pred.Seq)
		if !st.inst.IsStore() {
			return false // stale identifier from before a squash
		}
		e.waitValid, e.waitAddr, e.waitSize = true, st.inst.Addr, st.inst.Size
		return !c.storeDone(st)
	case mdp.WaitAll:
		for i := len(c.sq) - 1; i >= 0; i-- {
			st := c.entry(c.sq[i])
			if st.seq >= e.seq {
				continue
			}
			if !c.storeDone(st) {
				return true
			}
		}
		return false
	case mdp.Vector:
		for d := 0; d < 64; d++ {
			if e.pred.Mask&(1<<uint(d)) == 0 {
				continue
			}
			if uint64(d) >= e.storeCount {
				continue
			}
			st := c.storeBySQIndex(e.storeCount - 1 - uint64(d))
			if st == nil || st.seq >= e.seq {
				continue
			}
			if !c.storeDone(st) {
				e.waitValid, e.waitAddr, e.waitSize = true, st.inst.Addr, st.inst.Size
				return true
			}
			if st.inst.Overlaps(e.inst) {
				// Remember at least one real overlap for the audit.
				e.waitValid, e.waitAddr, e.waitSize = true, st.inst.Addr, st.inst.Size
			}
		}
		return false
	}
	return false
}

// tryLoad attempts to execute a load whose sources are ready and whose MDP
// gate has cleared. It searches the store queue (youngest overlapping
// resolved store) and then the store buffer:
//
//   - full coverage with ready data → store-to-load forwarding at L1D
//     latency (the LQ/SB are searched in parallel with the L1D access);
//   - full coverage, data not ready → wait (retry next cycle);
//   - partial coverage → wait until the store drains to the cache;
//   - no overlap → demand access to the memory hierarchy (speculative if
//     unresolved older stores remain).
//
// Returns true if the load issued (consuming a load port).
func (c *Core) tryLoad(e *robEntry) bool {
	in := e.inst
	// Youngest overlapping address-resolved store in the SQ.
	for i := len(c.sq) - 1; i >= 0; i-- {
		st := c.entry(c.sq[i])
		if st.seq >= e.seq || !st.addrResolved {
			continue
		}
		if !st.inst.Overlaps(in) {
			continue
		}
		if st.inst.Covers(in.Addr, in.Size) {
			if c.storeDone(st) {
				c.issueLoadForward(e, st.seq)
				c.recordSVW(e, st.storeIndex, true)
				return true
			}
			return false // data not produced yet: true-dependence stall
		}
		return false // partial coverage: wait for the store to drain
	}
	// Store buffer (committed, not yet drained).
	for i := len(c.sb) - 1; i >= 0; i-- {
		sb := &c.sb[i]
		if !isa.Overlap(sb.addr, sb.size, in.Addr, in.Size) {
			continue
		}
		if sb.addr <= in.Addr && in.Addr+uint64(in.Size) <= sb.addr+uint64(sb.size) {
			c.issueLoadForward(e, sb.seq)
			c.recordSVW(e, sb.storeIndex, true)
			return true
		}
		return false // partial coverage from the store buffer
	}
	// No overlapping store visible: access the cache hierarchy.
	c.run.IssuedUops++
	e.state = stIssued
	e.executed = true
	e.executedAt = c.cycle
	e.doneAt = c.mem.Load(c.cycle, in.PC, in.Addr)
	c.iqCount--
	c.recordSVW(e, 0, false)
	return true
}

// issueLoadForward completes a load through store-to-load forwarding. The
// LQ and SB are searched associatively in parallel with the L1D access, so
// forwarding costs the L1D hit latency (Table I).
func (c *Core) issueLoadForward(e *robEntry, fromSeq uint64) {
	c.run.IssuedUops++
	e.state = stIssued
	e.executed = true
	e.executedAt = c.cycle
	e.fwdFrom = fromSeq
	e.doneAt = c.cycle + uint64(c.cfg.L1D.HitLatency)
	c.iqCount--
}

// resolveStore runs when a store resolves its address: it searches the load
// queue for younger loads that already executed with an overlapping
// footprint. With the forwarding filter (§IV-A1) a load whose forwarder is
// younger than this store is left alone — it already has the correct value;
// without it (the Fig. 12 ablation, matching gem5) any such load is flagged.
// The youngest conflicting store is recorded for commit-time training.
func (c *Core) resolveStore(st *robEntry) {
	if c.opt.Filter == FilterSVW {
		return // loads verify themselves at commit against the SSBF
	}
	for seq := st.seq + 1; seq < c.tailSeq; seq++ {
		ld := c.entry(seq)
		if !ld.inst.IsLoad() || !ld.executed {
			continue
		}
		if !ld.inst.Overlaps(st.inst) {
			continue
		}
		if ld.fwdFrom == st.seq {
			continue // forwarded from this very store: value is correct
		}
		if c.opt.Filter == FilterFwd && ld.fwdFrom > st.seq {
			continue // got the value from a younger store: correct
		}
		if !ld.violated || st.seq > ld.violStore.Seq {
			ld.violated = true
			ld.violStore = mdp.StoreInfo{
				PC:          st.inst.PC,
				Seq:         st.seq,
				BranchCount: st.branchCount,
				StoreIndex:  st.storeIndex,
			}
		}
		if c.opt.TrainAtDetect && !ld.trainedAtDetect {
			// §IV-A1 ablation: train immediately with the first store that
			// detects the conflict — possibly not the youngest conflicting
			// one (the Fig. 3d hazard commit-time training avoids). The
			// squash itself stays lazy.
			ld.trainedAtDetect = true
			ldInfo := c.loadInfoOf(ld)
			dist := mdp.DistanceOf(ldInfo, ld.violStore)
			c.pred.TrainViolation(ldInfo, ld.violStore, dist, c.outcomeOf(ld, true), c.histAt(ld.traceIdx))
		}
	}
}
