package pipeline

import (
	"math/bits"

	"repro/internal/isa"
	"repro/internal/mdp"
)

// This file implements the memory dependence machinery: the oracle scan
// that feeds the Ideal predictor, the prediction-driven issue gates, the
// store-queue/store-buffer search with store-to-load forwarding, and the
// executed-load search a resolving store performs to detect memory order
// violations (with the §IV-A1 forwarding filter).
//
// All associative searches are gated by the core's per-cache-line occupancy
// filters (sqLines/sbLines/ldLines): a zero filter response proves no queue
// entry can overlap the probing footprint, so the common no-conflict case
// never walks a queue.

// oracleDep finds the youngest older in-flight store whose footprint
// overlaps the dispatching load, using the simulator's exact knowledge of
// addresses. Only the Ideal predictor consumes the result (see needOracle).
func (c *Core) oracleDep(ld *robEntry) (bool, int) {
	if !c.sqLines.mayOverlap(ld.inst.Addr, ld.inst.Size) {
		return false, 0
	}
	for i := c.sqLen - 1; i >= 0; i-- {
		st := c.entry(c.sqSeqAt(i))
		if st.inst.Overlaps(ld.inst) {
			return true, int(ld.storeCount - 1 - st.storeIndex)
		}
	}
	return false, 0
}

// storeBySQIndex returns the in-flight store with the given global store
// allocation index, or nil if it has already committed (or was never
// dispatched). Store queue order makes this a direct offset.
func (c *Core) storeBySQIndex(idx uint64) *robEntry {
	if c.sqLen == 0 {
		return nil
	}
	first := c.entry(c.sqSeqAt(0)).storeIndex
	if idx < first || idx >= first+uint64(c.sqLen) {
		return nil
	}
	return c.entry(c.sqSeqAt(int(idx - first)))
}

// storeDone reports whether a store micro-op has fully executed.
func (c *Core) storeDone(st *robEntry) bool {
	return st.state == stIssued && c.cycle >= st.doneAt
}

// gateBlocked evaluates the load's MDP decision: true while the load must
// keep waiting. It records the waited-for store's footprint so commit can
// classify the wait as a true or false dependence, and a retry bound so the
// issue scan skips the load until the blocking store can be done.
func (c *Core) gateBlocked(e *robEntry) bool {
	switch e.pred.Kind {
	case mdp.NoDep:
		return false
	case mdp.Distance:
		if uint64(e.pred.Dist) >= e.storeCount {
			return false // distance reaches before the stream start
		}
		st := c.storeBySQIndex(e.storeCount - 1 - uint64(e.pred.Dist))
		if st == nil || st.seq >= e.seq {
			return false // already committed (or nonsense prediction)
		}
		e.waitValid, e.waitAddr, e.waitSize = true, st.inst.Addr, st.inst.Size
		if c.storeDone(st) {
			return false
		}
		c.setRetry(e, c.storeDoneBound(st))
		return true
	case mdp.StoreSeq:
		if e.pred.Seq == 0 || e.pred.Seq < c.headSeq || e.pred.Seq >= e.seq {
			return false
		}
		st := c.entry(e.pred.Seq)
		if !st.inst.IsStore() {
			return false // stale identifier from before a squash
		}
		e.waitValid, e.waitAddr, e.waitSize = true, st.inst.Addr, st.inst.Size
		if c.storeDone(st) {
			return false
		}
		c.setRetry(e, c.storeDoneBound(st))
		return true
	case mdp.WaitAll:
		for i := c.sqLen - 1; i >= 0; i-- {
			st := c.entry(c.sqSeqAt(i))
			if st.seq >= e.seq {
				continue
			}
			if !c.storeDone(st) {
				c.setRetry(e, c.storeDoneBound(st))
				return true
			}
		}
		return false
	case mdp.Vector:
		mask := e.pred.Mask
		if e.storeCount < 64 {
			mask &= 1<<e.storeCount - 1 // distances beyond the stream start
		}
		for mask != 0 {
			d := bits.TrailingZeros64(mask)
			mask &= mask - 1
			st := c.storeBySQIndex(e.storeCount - 1 - uint64(d))
			if st == nil || st.seq >= e.seq {
				continue
			}
			if !c.storeDone(st) {
				e.waitValid, e.waitAddr, e.waitSize = true, st.inst.Addr, st.inst.Size
				c.setRetry(e, c.storeDoneBound(st))
				return true
			}
			if st.inst.Overlaps(e.inst) {
				// Remember at least one real overlap for the audit.
				e.waitValid, e.waitAddr, e.waitSize = true, st.inst.Addr, st.inst.Size
			}
		}
		return false
	}
	return false
}

// tryLoad attempts to execute a load whose sources are ready and whose MDP
// gate has cleared. It searches the store queue (youngest overlapping
// resolved store) and then the store buffer:
//
//   - full coverage with ready data → store-to-load forwarding at L1D
//     latency (the LQ/SB are searched in parallel with the L1D access);
//   - full coverage, data not ready → wait (retry when it can be done);
//   - partial coverage → wait until the store drains to the cache;
//   - no overlap → demand access to the memory hierarchy (speculative if
//     unresolved older stores remain).
//
// Blocked outcomes set a retry bound; any store address resolution or store-
// buffer free advances memEpoch and re-evaluates, since either can change
// which store the search finds. Returns true if the load issued (consuming a
// load port).
func (c *Core) tryLoad(e *robEntry) bool {
	in := e.inst
	// Youngest overlapping address-resolved store in the SQ.
	if c.sqLines.mayOverlap(in.Addr, in.Size) {
		for i := c.sqLen - 1; i >= 0; i-- {
			st := c.entry(c.sqSeqAt(i))
			if st.seq >= e.seq || !st.addrResolved {
				continue
			}
			if !st.inst.Overlaps(in) {
				continue
			}
			if st.inst.Covers(in.Addr, in.Size) {
				if c.storeDone(st) {
					c.issueLoadForward(e, st.seq, st.traceIdx)
					c.recordSVW(e, st.storeIndex, true)
					c.noteLoadExecuted(e)
					return true
				}
				// True-dependence stall until the forwarder can be done.
				c.setRetry(e, c.storeDoneBound(st))
				return false
			}
			// Partial coverage: wait for the store to reach the cache.
			c.setRetry(e, neverRetry)
			return false
		}
	}
	// Store buffer (committed, not yet drained).
	if c.sbLines.mayOverlap(in.Addr, in.Size) {
		for i := c.sbLen - 1; i >= 0; i-- {
			sb := c.sbAt(i)
			if !isa.Overlap(sb.addr, sb.size, in.Addr, in.Size) {
				continue
			}
			if sb.addr <= in.Addr && in.Addr+uint64(in.Size) <= sb.addr+uint64(sb.size) {
				c.issueLoadForward(e, sb.seq, sb.traceIdx)
				c.recordSVW(e, sb.storeIndex, true)
				c.noteLoadExecuted(e)
				return true
			}
			// Partial coverage from the store buffer: wait for the drain.
			c.setRetry(e, neverRetry)
			return false
		}
	}
	// No overlapping store visible: access the cache hierarchy.
	if c.vprov != nil {
		c.captureMemRead(e)
	}
	c.run.IssuedUops++
	e.state = stIssued
	e.executed = true
	e.executedAt = c.cycle
	e.doneAt = c.mem.Load(c.cycle, in.PC, in.Addr)
	c.readyAt[e.seq&c.robMask] = e.doneAt + 1
	c.iqCount--
	c.recordSVW(e, 0, false)
	c.noteLoadExecuted(e)
	return true
}

// noteLoadExecuted indexes a just-executed load for the violation search:
// its footprint enters the load line filter and its seq the executed-load
// list. The list is compacted in place (dropping committed seqs) when full;
// executed uncommitted loads never exceed the LQ capacity, so compaction
// always makes room without reallocating.
func (c *Core) noteLoadExecuted(e *robEntry) {
	c.ldLines.add(e.inst.Addr, e.inst.Size)
	if len(c.execLoads) == cap(c.execLoads) {
		live := c.execLoads[:0]
		for _, seq := range c.execLoads {
			if seq >= c.headSeq {
				live = append(live, seq)
			}
		}
		c.execLoads = live
	}
	c.execLoads = append(c.execLoads, e.seq)
}

// issueLoadForward completes a load through store-to-load forwarding. The
// LQ and SB are searched associatively in parallel with the L1D access, so
// forwarding costs the L1D hit latency (Table I). fromTraceIdx is the
// forwarding store's dynamic trace index (verification provenance).
func (c *Core) issueLoadForward(e *robEntry, fromSeq uint64, fromTraceIdx int) {
	if c.vprov != nil {
		c.captureForward(e, fromTraceIdx)
	}
	c.run.IssuedUops++
	e.state = stIssued
	e.executed = true
	e.executedAt = c.cycle
	e.fwdFrom = fromSeq
	e.doneAt = c.cycle + uint64(c.cfg.L1D.HitLatency)
	c.readyAt[e.seq&c.robMask] = e.doneAt + 1
	c.iqCount--
}

// resolveStore runs when a store resolves its address: it searches the
// executed-load list for younger loads that already executed with an
// overlapping footprint. With the forwarding filter (§IV-A1) a load whose
// forwarder is younger than this store is left alone — it already has the
// correct value; without it (the Fig. 12 ablation, matching gem5) any such
// load is flagged. The youngest conflicting store is recorded for commit-
// time training.
//
// The load line filter short-circuits stores with no executed overlapping
// load (the overwhelmingly common case); surviving candidates come from the
// executed-load list instead of a ROB walk, and are processed in ascending
// seq order so detect-time training sees conflicts in the same order the
// ROB walk produced.
func (c *Core) resolveStore(st *robEntry) {
	if c.opt.Filter == FilterSVW {
		return // loads verify themselves at commit against the SSBF
	}
	if !c.ldLines.mayOverlap(st.inst.Addr, st.inst.Size) {
		return
	}
	// Collect candidate seqs (younger executed loads), dropping committed
	// entries as they are encountered (their seqs are below headSeq; seqs of
	// squashed loads were purged eagerly, so no live entry is stale).
	matches := c.matchBuf[:0]
	for i := 0; i < len(c.execLoads); {
		seq := c.execLoads[i]
		if seq < c.headSeq {
			last := len(c.execLoads) - 1
			c.execLoads[i] = c.execLoads[last]
			c.execLoads = c.execLoads[:last]
			continue
		}
		i++
		if seq > st.seq && c.entry(seq).inst.Overlaps(st.inst) {
			matches = append(matches, seq)
		}
	}
	c.matchBuf = matches
	// Ascending seq order (insertion sort: the list is tiny and unordered
	// only because of swap-deletes).
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j] < matches[j-1]; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	for _, seq := range matches {
		ld := c.entry(seq)
		if ld.fwdFrom == st.seq {
			continue // forwarded from this very store: value is correct
		}
		if c.opt.Filter == FilterFwd && ld.fwdFrom > st.seq {
			continue // got the value from a younger store: correct
		}
		if c.fiFwdFlip {
			// Injected forwarding bug (faultinject.FaultFwdFlip): the filter
			// condition is flipped, wrongly concluding this load already has
			// the store's value, so no violation is ever flagged and the
			// stale value retires. The verification oracle must catch it.
			continue
		}
		if !ld.violated || st.seq > ld.violStore.Seq {
			ld.violated = true
			ld.violStore = mdp.StoreInfo{
				PC:          st.inst.PC,
				Seq:         st.seq,
				BranchCount: st.branchCount,
				StoreIndex:  st.storeIndex,
			}
		}
		if c.opt.TrainAtDetect && !ld.trainedAtDetect {
			// §IV-A1 ablation: train immediately with the first store that
			// detects the conflict — possibly not the youngest conflicting
			// one (the Fig. 3d hazard commit-time training avoids). The
			// squash itself stays lazy.
			ld.trainedAtDetect = true
			ldInfo := c.loadInfoOf(ld)
			dist := mdp.DistanceOf(ldInfo, ld.violStore)
			c.pred.TrainViolation(ldInfo, ld.violStore, dist, c.outcomeOf(ld, true), c.histAt(ld.traceIdx))
		}
	}
}
