package pipeline

// Hot-path guarantees (DESIGN.md §10): a Reset core is bit-identical to a
// fresh one, and the steady-state simulation loop allocates nothing — every
// allocation is per-run setup, independent of how many instructions flow
// through the core.

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/mdp"
	"repro/internal/trace"
)

// TestResetCoreMatchesFresh is the contract Core.Reset documents and the
// sim-level core pool depends on: running on a reset core must produce the
// same result, bit for bit, as running on a newly constructed one — across
// predictor families, filter modes, and a dirty intervening run on a
// different app.
func TestResetCoreMatchesFresh(t *testing.T) {
	main := appTrace(t, "511.povray", 25000)
	dirty := appTrace(t, "541.leela", 12000)
	cases := []struct {
		name string
		pred func() mdp.Predictor
		opt  Options
	}{
		{"phast", corePHAST, DefaultOptions()},
		{"storesets", func() mdp.Predictor { return mdp.NewStoreSets(mdp.DefaultStoreSetsConfig()) }, DefaultOptions()},
		{"nosq-svw", func() mdp.Predictor { return mdp.NewNoSQ(mdp.DefaultNoSQConfig()) },
			func() Options { o := DefaultOptions(); o.Filter = FilterSVW; return o }()},
		{"ideal", func() mdp.Predictor { return mdp.NewIdeal() }, DefaultOptions()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := run(t, main, tc.pred(), tc.opt).res

			c, err := New(config.AlderLake(), tc.pred(), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			// Pollute every structure the reset must clean: a run on a
			// different workload leaves caches, histories, queues, filters
			// and predictor state all dirty.
			if _, err := c.Run(dirty); err != nil {
				t.Fatal(err)
			}
			if err := c.Reset(tc.pred()); err != nil {
				t.Fatal(err)
			}
			reused, err := c.Run(main)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("reset core diverged from fresh core:\nfresh  %+v\nreused %+v", fresh, reused)
			}
		})
	}
}

// TestSteadyStateZeroAlloc proves the timing loop itself is allocation-free:
// simulating 6x the instructions must cost exactly the same number of heap
// allocations (all of which are per-run setup — predictor, branch
// predictor, result copy).
func TestSteadyStateZeroAlloc(t *testing.T) {
	short := appTrace(t, "511.povray", 4000)
	long := appTrace(t, "511.povray", 24000)
	// Interned traces arrive with prefixes prebuilt, as in sim.TraceFor.
	short.Pre()
	long.Pre()
	opt := DefaultOptions()
	c, err := New(config.AlderLake(), corePHAST(), opt)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(tr *trace.Trace) float64 {
		return testing.AllocsPerRun(3, func() {
			if err := c.Reset(corePHAST()); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Run(tr); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Warm both lengths once so one-time pool growth (predictor table
	// nodes surviving in the same core) cannot masquerade as steady-state
	// allocation.
	measure(long)
	allocsShort := measure(short)
	allocsLong := measure(long)
	if allocsLong != allocsShort {
		t.Errorf("steady state allocates: %v allocs at n=4000 vs %v at n=24000 (want equal)",
			allocsShort, allocsLong)
	}
}
