package pipeline

import (
	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/stats"
)

// runAlias keeps test signatures readable.
type runAlias = stats.Run

// corePHAST builds the default PHAST predictor for pipeline tests (the
// import lives here so the main test file reads cleanly).
func corePHAST() mdp.Predictor { return core.NewDefault() }
