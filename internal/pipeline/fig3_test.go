package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/histutil"
	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/trace"
)

// This file tests the paper's Figure 3 taxonomy directly: two stores St1
// (older) and St2 (younger) to address a, followed by a load of a. The four
// cases differ in when each store resolves relative to the load's
// execution; the required behaviours are:
//
//	(a) both resolved before the load  → forward from St2, no squash
//	(b) St1 resolved, St2 not          → forward from St1; St2's later
//	                                     resolution squashes the load, and
//	                                     training names St2 (the youngest)
//	(c) St2 resolved, St1 not          → forward from St2; St1's later
//	                                     resolution must NOT squash (the
//	                                     §IV-A1 filter), but does without it
//	(d) neither resolved               → speculative load; squash; training
//	                                     names St2
//
// Register roles: r5/r6 gate St1's and St2's address resolution; the load's
// address is immediate so it can always issue first.

func fig3Trace(lat1, lat2 uint8) *trace.Trace {
	const a = 0x9000
	var insts []isa.Inst
	for i := 0; i < 200; i++ {
		insts = append(insts,
			isa.Inst{PC: 0x100, Kind: isa.ALU, Dst: 5, Lat: lat1},
			isa.Inst{PC: 0x104, Kind: isa.ALU, Dst: 6, Lat: lat2},
			isa.Inst{PC: 0x108, Kind: isa.Store, SrcA: 5, Addr: a, Size: 8}, // St1
			isa.Inst{PC: 0x10c, Kind: isa.Store, SrcA: 6, Addr: a, Size: 8}, // St2
			isa.Inst{PC: 0x110, Kind: isa.Load, Dst: 1, Addr: a, Size: 8},
			isa.Inst{PC: 0x114, Kind: isa.ALU, Dst: 9, SrcA: 9, SrcB: 1, Lat: 1},
			// Spacer work so iterations do not overlap heavily.
			isa.Inst{PC: 0x118, Kind: isa.ALU, Dst: 2, SrcA: 2, Lat: 30},
			isa.Inst{PC: 0x11c, Kind: isa.ALU, Dst: 3, SrcA: 2, Lat: 30},
		)
	}
	return &trace.Trace{Name: "fig3", Insts: insts}
}

// waitSt2 is a stub predictor that always predicts distance 0 (wait for the
// youngest older store, St2) — isolating cases (a) and (c).
type waitSt2 struct {
	mdp.Ideal // reuse the no-op hooks
	trained   []mdp.StoreInfo
}

func (w *waitSt2) Name() string { return "wait-st2" }

func (w *waitSt2) Predict(ld mdp.LoadInfo, _ *histutil.Reg) mdp.Prediction {
	return mdp.Prediction{Kind: mdp.Distance, Dist: 0}
}

func (w *waitSt2) TrainViolation(_ mdp.LoadInfo, st mdp.StoreInfo, _ int, _ mdp.Outcome, _ *histutil.Reg) {
	w.trained = append(w.trained, st)
}

// trainRecorder wraps None and records which store each violation names.
type trainRecorder struct {
	mdp.None
	trained []mdp.StoreInfo
}

func (tr *trainRecorder) Name() string { return "train-recorder" }

func (tr *trainRecorder) TrainViolation(_ mdp.LoadInfo, st mdp.StoreInfo, _ int, _ mdp.Outcome, _ *histutil.Reg) {
	tr.trained = append(tr.trained, st)
}

func runFig3(t *testing.T, tr *trace.Trace, p mdp.Predictor, filter FilterMode) *statsRun {
	t.Helper()
	opt := DefaultOptions()
	opt.Filter = filter
	c, err := New(config.AlderLake(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Case (a): both stores fast, load waits for St2 → forwards, never squashes.
func TestFig3aForwardFromYoungest(t *testing.T) {
	res := runFig3(t, fig3Trace(1, 1), &waitSt2{}, FilterFwd)
	if res.MemOrderViolations != 0 {
		t.Errorf("case (a): %d violations", res.MemOrderViolations)
	}
	if res.Forwards < 190 {
		t.Errorf("case (a): only %d forwards", res.Forwards)
	}
}

// Case (c): St1 slow, St2 fast; the load forwards from St2 while St1 is
// unresolved. With the §IV-A1 filter St1's resolution is harmless; without
// it, the load is squashed — the gem5 behaviour the paper measures in
// Fig. 12.
func TestFig3cFilterSuppressesOlderStore(t *testing.T) {
	withFilter := runFig3(t, fig3Trace(40, 1), &waitSt2{}, FilterFwd)
	if withFilter.MemOrderViolations != 0 {
		t.Errorf("case (c) with filter: %d violations, want 0", withFilter.MemOrderViolations)
	}
	without := runFig3(t, fig3Trace(40, 1), &waitSt2{}, FilterNone)
	if without.MemOrderViolations < 150 {
		t.Errorf("case (c) without filter: %d violations, want ~200", without.MemOrderViolations)
	}
}

// Cases (b) and (d): the load executes before St2 resolves; it must be
// squashed, and the predictor must be trained with St2 — the youngest
// conflicting store — not with St1, even when St1 resolves first
// (the commit-time training rationale of §IV-A1).
func TestFig3bdTrainsYoungestStore(t *testing.T) {
	for name, lats := range map[string][2]uint8{
		"b": {1, 40},  // St1 resolved, St2 late
		"d": {35, 40}, // both late
	} {
		rec := &trainRecorder{}
		res := runFig3(t, fig3Trace(lats[0], lats[1]), rec, FilterFwd)
		if res.MemOrderViolations == 0 {
			t.Fatalf("case (%s): expected violations", name)
		}
		if len(rec.trained) == 0 {
			t.Fatalf("case (%s): no training calls", name)
		}
		for _, st := range rec.trained {
			if st.PC != 0x10c {
				t.Fatalf("case (%s): trained store PC %#x, want St2 (0x10c)", name, st.PC)
			}
		}
	}
}
