package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/trace"
	"repro/internal/workload"
)

func run(t *testing.T, tr *trace.Trace, pred mdp.Predictor, opt Options) *coreResult {
	t.Helper()
	c, err := New(config.AlderLake(), pred, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return &coreResult{res: res, core: c}
}

type coreResult struct {
	res  *statsRun
	core *Core
}

// statsRun aliases the stats type without importing it twice in tests.
type statsRun = runAlias

func appTrace(t *testing.T, name string, n int) *trace.Trace {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Generate(p, n, 0)
}

// TestEveryPredictorCommitsEverything: the fundamental forward-progress and
// ordering invariant, for each predictor class, on a conflict-heavy app.
func TestEveryPredictorCommitsEverything(t *testing.T) {
	tr := appTrace(t, "511.povray", 30000)
	preds := map[string]mdp.Predictor{
		"ideal":      mdp.NewIdeal(),
		"none":       mdp.NewNone(),
		"alwayswait": mdp.NewAlwaysWait(),
		"storesets":  mdp.NewStoreSets(mdp.DefaultStoreSetsConfig()),
		"nosq":       mdp.NewNoSQ(mdp.DefaultNoSQConfig()),
		"mdptage":    mdp.NewMDPTAGE(mdp.DefaultMDPTAGEConfig()),
		"vector":     mdp.DefaultStoreVector(),
		"cht":        mdp.DefaultCHT(),
	}
	for name, p := range preds {
		r := run(t, tr, p, DefaultOptions())
		if r.res.Committed != 30000 {
			t.Errorf("%s: committed %d, want 30000", name, r.res.Committed)
		}
		if r.res.Cycles == 0 || r.res.IPC() <= 0 {
			t.Errorf("%s: degenerate cycle count", name)
		}
	}
}

// TestIdealIsIdeal: with the forwarding filter on, the oracle suffers no
// memory order violations and no false dependencies — the paper's
// normalisation baseline must be clean by construction.
func TestIdealIsIdeal(t *testing.T) {
	for _, app := range []string{"511.povray", "502.gcc_1", "525.x264_3", "541.leela"} {
		tr := appTrace(t, app, 30000)
		r := run(t, tr, mdp.NewIdeal(), DefaultOptions())
		if r.res.MemOrderViolations != 0 {
			t.Errorf("%s: ideal suffered %d violations", app, r.res.MemOrderViolations)
		}
		if r.res.FalseDependencies != 0 {
			t.Errorf("%s: ideal suffered %d false dependencies", app, r.res.FalseDependencies)
		}
	}
}

// TestNoneExposesViolations: always-speculate must squash on conflict apps,
// and always-wait must trade them for false dependencies.
func TestNoneExposesViolations(t *testing.T) {
	tr := appTrace(t, "511.povray", 30000)
	none := run(t, tr, mdp.NewNone(), DefaultOptions())
	if none.res.MemOrderViolations == 0 {
		t.Error("none should suffer violations on povray")
	}
	if none.res.FalseDependencies != 0 {
		t.Error("none never waits, so it cannot have false dependencies")
	}
	wait := run(t, tr, mdp.NewAlwaysWait(), DefaultOptions())
	if wait.res.MemOrderViolations != 0 {
		t.Error("alwayswait should never violate")
	}
	if wait.res.FalseDependencies == 0 {
		t.Error("alwayswait should pay false dependencies")
	}
}

// TestDeterminism: identical configurations produce identical results.
func TestDeterminism(t *testing.T) {
	tr := appTrace(t, "502.gcc_1", 20000)
	a := run(t, tr, mdp.NewStoreSets(mdp.DefaultStoreSetsConfig()), DefaultOptions())
	b := run(t, tr, mdp.NewStoreSets(mdp.DefaultStoreSetsConfig()), DefaultOptions())
	if a.res.Cycles != b.res.Cycles || a.res.MemOrderViolations != b.res.MemOrderViolations ||
		a.res.FalseDependencies != b.res.FalseDependencies {
		t.Errorf("nondeterministic: %+v vs %+v", a.res, b.res)
	}
}

// TestFwdFilterReducesViolations: disabling the §IV-A1 filter must not
// reduce (and normally increases) squashes — the Fig. 12 mechanism.
func TestFwdFilterReducesViolations(t *testing.T) {
	tr := appTrace(t, "525.x264_3", 40000)
	on := run(t, tr, mdp.NewNone(), DefaultOptions())
	off := DefaultOptions()
	off.Filter = FilterNone
	offR := run(t, tr, mdp.NewNone(), off)
	if offR.res.MemOrderViolations < on.res.MemOrderViolations {
		t.Errorf("FWD off (%d) should not have fewer violations than on (%d)",
			offR.res.MemOrderViolations, on.res.MemOrderViolations)
	}
}

// TestForwardingHappens: store-to-load forwarding must feed a significant
// share of dependent loads on spill/fill heavy apps.
func TestForwardingHappens(t *testing.T) {
	tr := appTrace(t, "548.exchange2", 30000)
	r := run(t, tr, mdp.NewIdeal(), DefaultOptions())
	if r.res.Forwards == 0 {
		t.Error("exchange2's spill/fill traffic should forward")
	}
}

// TestSquashAccounting: squashed micro-ops only arise with violations, and
// fetched ≥ committed always.
func TestSquashAccounting(t *testing.T) {
	tr := appTrace(t, "511.povray", 30000)
	n := run(t, tr, mdp.NewNone(), DefaultOptions())
	if n.res.SquashedUops == 0 {
		t.Error("violations must discard micro-ops")
	}
	if n.res.Fetched < n.res.Committed {
		t.Errorf("fetched %d < committed %d", n.res.Fetched, n.res.Committed)
	}
	i := run(t, tr, mdp.NewIdeal(), DefaultOptions())
	if i.res.SquashedUops != 0 {
		t.Error("the oracle must not squash")
	}
	if i.res.Fetched != i.res.Committed {
		t.Error("without squashes, fetched == committed")
	}
}

// TestStoreSetsSerialisationCost: on the loop-carried same-store-PC app the
// set-based predictor must lose IPC against a distance predictor (the
// paper's perlbench_3 / §VII discussion).
func TestStoreSetsSerialisationCost(t *testing.T) {
	tr := appTrace(t, "500.perlbench_3", 60000)
	ss := run(t, tr, mdp.NewStoreSets(mdp.DefaultStoreSetsConfig()), DefaultOptions())
	ph := run(t, tr, newPHASTForTest(t), DefaultOptions())
	if ss.res.IPC() >= ph.res.IPC() {
		t.Errorf("Store Sets IPC %.3f should trail a distance predictor %.3f on perlbench_3",
			ss.res.IPC(), ph.res.IPC())
	}
}

// TestBranchMPKIRealistic: with the TAGE-SC-L front end the suite's branch
// MPKI must be in the single digits (Fig. 1's right edge), not tens.
func TestBranchMPKIRealistic(t *testing.T) {
	tr := appTrace(t, "511.povray", 40000)
	r := run(t, tr, mdp.NewIdeal(), DefaultOptions())
	if got := r.res.BranchMPKI(); got > 12 {
		t.Errorf("branch MPKI %.1f unrealistically high", got)
	}
}

// TestTinyHandCraftedConflict: a minimal hand-built trace where a load must
// conflict with exactly one unresolved store — checks violation detection,
// training distance, and recovery end to end.
func TestTinyHandCraftedConflict(t *testing.T) {
	const addr = 0x1000
	var insts []isa.Inst
	// Repeat: slow-address store to addr, then an immediate load of addr.
	for i := 0; i < 400; i++ {
		pc := uint64(0x100)
		insts = append(insts,
			isa.Inst{PC: pc, Kind: isa.ALU, Dst: 5, SrcA: 0, Lat: 12},
			isa.Inst{PC: pc + 4, Kind: isa.Store, SrcA: 5, SrcB: 0, Addr: addr, Size: 8},
			isa.Inst{PC: pc + 8, Kind: isa.Load, Dst: 1, SrcA: 0, Addr: addr, Size: 8},
			isa.Inst{PC: pc + 12, Kind: isa.ALU, Dst: 9, SrcA: 9, SrcB: 1, Lat: 1},
		)
	}
	tr := &trace.Trace{Name: "tiny", Insts: insts}

	none := run(t, tr, mdp.NewNone(), DefaultOptions())
	if none.res.MemOrderViolations < 100 {
		t.Errorf("speculating through an unresolved store should violate, got %d",
			none.res.MemOrderViolations)
	}
	ph := run(t, tr, newPHASTForTest(t), DefaultOptions())
	if ph.res.MemOrderViolations > 5 {
		t.Errorf("PHAST should learn the distance-0 dependence, got %d violations",
			ph.res.MemOrderViolations)
	}
	if ph.res.Forwards < 300 {
		t.Errorf("predicted loads should forward, got %d", ph.res.Forwards)
	}
	if ph.res.FalseDependencies > 5 {
		t.Errorf("the dependence is always real; false deps = %d", ph.res.FalseDependencies)
	}
}

// TestPartialCoverageStall: narrow stores under a wide load cannot forward;
// the load must wait for the store buffer and never violate with the oracle.
func TestPartialCoverageStall(t *testing.T) {
	tr := appTrace(t, "525.x264_3", 40000)
	r := run(t, tr, mdp.NewIdeal(), DefaultOptions())
	if r.res.MemOrderViolations != 0 {
		t.Errorf("ideal on x264_3: %d violations", r.res.MemOrderViolations)
	}
}

// TestGenerationsScaleViolations: a bigger machine must expose at least as
// many (and normally more) violations for the always-speculate baseline —
// the paper's Fig. 2 motivation.
func TestGenerationsScaleViolations(t *testing.T) {
	p, err := workload.ByName("511.povray")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(p, 40000, 0)
	runOn := func(m config.Machine) uint64 {
		c, err := New(m, mdp.NewNone(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.MemOrderViolations
	}
	nehalem := runOn(config.Nehalem())
	alder := runOn(config.AlderLake())
	if alder < nehalem {
		t.Errorf("violations should grow with machine size: nehalem %d, alderlake %d",
			nehalem, alder)
	}
}

func newPHASTForTest(t *testing.T) mdp.Predictor {
	t.Helper()
	return corePHAST()
}
