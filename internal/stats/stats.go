// Package stats provides the measurement plumbing shared by every
// experiment: per-run counter sets, derived metrics (IPC, MPKI, speedup),
// aggregation across a suite (arithmetic and geometric means), histograms,
// and plain-text table rendering for the figure/table reproductions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Run holds the raw counters produced by one simulation.
type Run struct {
	App       string // workload name
	Predictor string // MDP name
	Machine   string // machine configuration name

	Cycles    uint64 // elapsed cycles
	Committed uint64 // committed (retired) micro-ops
	Fetched   uint64 // fetched micro-ops, including squashed re-fetches

	Loads  uint64 // committed loads
	Stores uint64 // committed stores

	// Memory dependence prediction outcomes.
	MemOrderViolations uint64 // false negatives: loads squashed at commit
	FalseDependencies  uint64 // false positives: loads stalled with no real dependence
	TrueDependencies   uint64 // loads that correctly waited and forwarded
	Forwards           uint64 // committed loads fed by store-to-load forwarding

	// Branch prediction outcomes.
	Branches          uint64
	BranchMispredicts uint64

	// Predictor table traffic (for the energy model).
	PredictorReads  uint64
	PredictorWrites uint64

	// Path tracking (unlimited predictors).
	PathsTracked uint64

	// Cache behaviour.
	L1DHits, L1DMisses uint64
	L2Hits, L2Misses   uint64
	L3Hits, L3Misses   uint64

	// Squash accounting.
	SquashedUops uint64 // micro-ops discarded by all squashes

	// Occupancy accounting (sampled every cycle).
	ROBOccupancySum uint64 // sum of in-flight micro-ops per cycle
	SQOccupancySum  uint64 // sum of in-flight stores per cycle
	IssuedUops      uint64 // micro-ops issued (≥ committed with squashes)

	// OracleDigest is the architectural load-value fingerprint of the run's
	// trace (oracle.Exec.Digest). Set only by interval-parallel runs, where
	// the stitcher proves it equal to the sequential in-order digest; plain
	// runs leave it zero (omitted from JSON), so cached results from either
	// mode remain comparable counter-for-counter.
	OracleDigest uint64 `json:"OracleDigest,omitempty"`
}

// AvgROBOccupancy returns the mean reorder-buffer occupancy.
func (r *Run) AvgROBOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.ROBOccupancySum) / float64(r.Cycles)
}

// AvgSQOccupancy returns the mean store-queue occupancy.
func (r *Run) AvgSQOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.SQOccupancySum) / float64(r.Cycles)
}

// IPC returns committed instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// MPKI returns events per kilo committed instruction.
func (r *Run) MPKI(events uint64) float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(r.Committed)
}

// ViolationMPKI is the false-negative MPKI (memory order violations).
func (r *Run) ViolationMPKI() float64 { return r.MPKI(r.MemOrderViolations) }

// FalseDepMPKI is the false-positive MPKI (unnecessary load stalls).
func (r *Run) FalseDepMPKI() float64 { return r.MPKI(r.FalseDependencies) }

// TotalMDPMPKI is the combined memory dependence misprediction MPKI.
func (r *Run) TotalMDPMPKI() float64 {
	return r.MPKI(r.MemOrderViolations + r.FalseDependencies)
}

// BranchMPKI is the branch misprediction MPKI.
func (r *Run) BranchMPKI() float64 { return r.MPKI(r.BranchMispredicts) }

// Speedup returns the relative IPC of r over base, as a ratio (1.0 = equal).
func (r *Run) Speedup(base *Run) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return r.IPC() / b
}

// GeoMean returns the geometric mean of strictly positive values; zero and
// negative inputs are skipped (they would otherwise collapse the mean).
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// IntHistogram is a fixed-bucket integer histogram (used e.g. for the
// conflicts-per-history-length distribution of Fig. 10). For concurrent
// float-valued distributions (request latencies) see Histogram in
// histogram.go.
type IntHistogram struct {
	Buckets  []uint64
	Overflow uint64
}

// NewIntHistogram returns a histogram with n buckets for values 0..n-1.
func NewIntHistogram(n int) *IntHistogram { return &IntHistogram{Buckets: make([]uint64, n)} }

// Add records one occurrence of v.
func (h *IntHistogram) Add(v int) {
	if v >= 0 && v < len(h.Buckets) {
		h.Buckets[v]++
		return
	}
	h.Overflow++
}

// Total returns the number of recorded values, including overflow.
func (h *IntHistogram) Total() uint64 {
	t := h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Fraction returns bucket v's share of all recorded values.
func (h *IntHistogram) Fraction(v int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	if v < 0 || v >= len(h.Buckets) {
		return float64(h.Overflow) / float64(t)
	}
	return float64(h.Buckets[v]) / float64(t)
}

// Table renders aligned plain-text tables, the output format of every
// experiment binary and benchmark in this repository.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with the given verb spec:
// strings pass through, float64 uses %.3f, integers use %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case uint64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named sequence of (label, value) points — one figure line.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends a point.
func (s *Series) Add(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// Geo returns the geometric mean of the series values.
func (s *Series) Geo() float64 { return GeoMean(s.Values) }

// String renders "name: label=value ..." on one line per point.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", s.Name)
	for i := range s.Labels {
		fmt.Fprintf(&b, "  %-18s %.4f\n", s.Labels[i], s.Values[i])
	}
	return b.String()
}

// SortedKeys returns the sorted keys of a string-keyed map of float64,
// a convenience for deterministic experiment output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
