package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	// 0.005 and 0.01 land in ≤0.01 (bounds are inclusive), 0.05 in ≤0.1,
	// 0.5 in ≤1, and 2 and 100 overflow.
	want := []uint64{2, 1, 1, 2}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (%v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if got, wantSum := s.Sum, 0.005+0.01+0.05+0.5+2+100; got != wantSum {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
	if mean := s.Mean(); mean != s.Sum/6 {
		t.Errorf("mean = %g, want %g", mean, s.Sum/6)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 90 observations ≤1, 10 in the ≤2 bucket.
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %g, want 1", q)
	}
	if q := s.Quantile(0.99); q != 2 {
		t.Errorf("p99 = %g, want 2", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %g, want 0", q)
	}
	// Overflow observations report the largest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if q := h2.Snapshot().Quantile(0.5); q != 1 {
		t.Errorf("overflow p50 = %g, want the top bound 1", q)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.ObserveDuration(50 * time.Millisecond)
	h.Observe(10)
	out := h.Snapshot().String()
	for _, want := range []string{"n=2", "≤0.1:1", ">1:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering %q missing %q", out, want)
		}
	}
}

func TestMetricsHistogramRegistry(t *testing.T) {
	m := NewMetrics()
	if len(m.Histograms()) != 0 {
		t.Error("fresh registry must have no histograms")
	}
	h := m.Histogram("lat", []float64{1, 2})
	if h2 := m.Histogram("lat", []float64{99}); h2 != h {
		t.Error("second Histogram call must return the first instance")
	}
	h.Observe(1.5)
	m.Add("reqs", 3)
	snaps := m.Histograms()
	if s, ok := snaps["lat"]; !ok || s.Count != 1 {
		t.Fatalf("snapshot = %+v, want lat with one observation", snaps)
	}
	out := m.String()
	for _, want := range []string{"reqs", "lat", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	// Counter-only registries keep rendering without a histogram table.
	if out := NewMetrics().String(); strings.Contains(out, "histograms") {
		t.Errorf("counter-only rendering grew a histogram table:\n%s", out)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Histogram("lat", DefaultLatencyBuckets)
			for j := 0; j < perWorker; j++ {
				h.Observe(0.001 * float64(j%10))
			}
		}()
	}
	wg.Wait()
	s := m.Histograms()["lat"]
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket sum %d != count %d", total, s.Count)
	}
}
