package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution counter: observations land in the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// overflow bucket. Buckets are fixed at construction, so Observe is a bucket
// search plus one atomic add — safe for concurrent use on request hot paths.
// Histograms live in a Metrics registry next to the counters (see
// Metrics.Histogram) so a /metrics endpoint renders both from one snapshot.
type Histogram struct {
	bounds []float64 // ascending upper bounds; len(counts) = len(bounds)+1
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, accumulated by CAS
}

// DefaultLatencyBuckets are upper bounds in seconds spanning sub-millisecond
// cache hits through multi-second sweep simulations — the default shape for
// request-latency histograms.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NewHistogram builds a histogram over the given ascending upper bounds. The
// bounds slice is copied; an empty bounds list yields a single +Inf bucket
// (count and sum only).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy. Buckets are read without a global
// lock, so a snapshot taken mid-Observe may be off by the in-flight
// observation — fine for monitoring, which is all histograms are for.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a frozen histogram: per-bucket counts (the last entry
// is the +Inf overflow bucket), total count and sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) from the bucket counts, reporting
// the upper bound of the bucket holding the q-th observation. Observations in
// the overflow bucket report the largest finite bound. Empty histograms
// report 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// String renders the non-empty buckets as "≤bound:count" pairs plus the
// total — compact enough for one metrics-table row.
func (s HistogramSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4g", s.Count, s.Mean())
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			fmt.Fprintf(&b, " >%.4g:%d", s.Bounds[len(s.Bounds)-1], c)
		} else {
			fmt.Fprintf(&b, " ≤%.4g:%d", s.Bounds[i], c)
		}
	}
	return b.String()
}

// histograms is the registry side of Metrics histogram support, kept separate
// from the counter map so counter Snapshot/String semantics are untouched.
type histograms struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// Histogram returns the named histogram, creating it with the given bounds on
// first use. Later calls return the existing histogram regardless of bounds,
// mirroring the create-on-first-touch counter contract.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	m.hists.mu.RLock()
	h := m.hists.m[name]
	m.hists.mu.RUnlock()
	if h != nil {
		return h
	}
	m.hists.mu.Lock()
	defer m.hists.mu.Unlock()
	if m.hists.m == nil {
		m.hists.m = map[string]*Histogram{}
	}
	if h = m.hists.m[name]; h == nil {
		h = NewHistogram(bounds)
		m.hists.m[name] = h
	}
	return h
}

// Histograms returns a point-in-time snapshot of every histogram.
func (m *Metrics) Histograms() map[string]HistogramSnapshot {
	m.hists.mu.RLock()
	defer m.hists.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(m.hists.m))
	for name, h := range m.hists.m {
		out[name] = h.Snapshot()
	}
	return out
}
