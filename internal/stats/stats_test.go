package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunDerivedMetrics(t *testing.T) {
	r := Run{
		Cycles: 1000, Committed: 2000,
		MemOrderViolations: 4, FalseDependencies: 6,
		Branches: 100, BranchMispredicts: 10,
	}
	if got := r.IPC(); got != 2.0 {
		t.Errorf("IPC = %f, want 2", got)
	}
	if got := r.ViolationMPKI(); got != 2.0 {
		t.Errorf("ViolationMPKI = %f, want 2", got)
	}
	if got := r.FalseDepMPKI(); got != 3.0 {
		t.Errorf("FalseDepMPKI = %f, want 3", got)
	}
	if got := r.TotalMDPMPKI(); got != 5.0 {
		t.Errorf("TotalMDPMPKI = %f, want 5", got)
	}
	if got := r.BranchMPKI(); got != 5.0 {
		t.Errorf("BranchMPKI = %f, want 5", got)
	}
}

func TestRunZeroSafe(t *testing.T) {
	var r Run
	if r.IPC() != 0 || r.ViolationMPKI() != 0 || r.Speedup(&Run{}) != 0 {
		t.Error("zero-valued run must not divide by zero")
	}
}

func TestSpeedup(t *testing.T) {
	a := Run{Cycles: 100, Committed: 300}
	b := Run{Cycles: 100, Committed: 200}
	if got := a.Speedup(&b); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Speedup = %f, want 1.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %f, want 4", got)
	}
	if got := GeoMean([]float64{1, 0, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean should skip zeros, got %f", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(vals []float64) bool {
		lo, hi := math.Inf(1), math.Inf(-1)
		any := false
		for i := range vals {
			v := math.Abs(vals[i])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			// Keep inputs in a physically meaningful range (IPC ratios,
			// MPKIs): exp/log round-trips lose the bound near MaxFloat64.
			v = math.Mod(v, 1e6)
			vals[i] = v
			if v > 0 {
				any = true
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		g := GeoMean(vals)
		if !any {
			return g == 0
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %f, want 2", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram(4)
	for _, v := range []int{0, 1, 1, 3, 9, -1} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Buckets[1] != 2 || h.Overflow != 2 {
		t.Errorf("buckets = %v overflow = %d", h.Buckets, h.Overflow)
	}
	if got := h.Fraction(1); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("Fraction(1) = %f", got)
	}
	if got := h.Fraction(100); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("Fraction(out of range) should report overflow share, got %f", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRowf("beta", 2.5)
	tbl.AddRowf("gamma", 7, "extra-dropped")
	out := tbl.String()
	for _, want := range []string{"demo", "name", "alpha", "2.500", "gamma", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "extra-dropped") {
		t.Error("cells beyond the header width must be dropped")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "ipc"
	s.Add("a", 1)
	s.Add("b", 4)
	if got := s.Geo(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Series.Geo = %f, want 2", got)
	}
	if out := s.String(); !strings.Contains(out, "ipc") || !strings.Contains(out, "a") {
		t.Errorf("series rendering: %q", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v", got)
		}
	}
}
