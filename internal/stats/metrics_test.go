package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	if m.Get("nothing") != 0 {
		t.Error("untouched counter must read 0")
	}
	m.Add("a", 2)
	m.Add("a", 3)
	m.AddDuration("ns", 1500*time.Nanosecond)
	if m.Get("a") != 5 || m.Get("ns") != 1500 {
		t.Errorf("a=%d ns=%d", m.Get("a"), m.Get("ns"))
	}
	snap := m.Snapshot()
	if snap["a"] != 5 || len(snap) != 2 { // reads never create counters
		t.Errorf("snapshot %v", snap)
	}
	out := m.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "5") {
		t.Errorf("rendering missing counters:\n%s", out)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	const workers, perWorker = 16, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				m.Add("hits", 1)
				_ = m.Get("hits")
			}
		}()
	}
	wg.Wait()
	if got := m.Get("hits"); got != workers*perWorker {
		t.Errorf("hits = %d, want %d", got, workers*perWorker)
	}
}
