package stats

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a registry of named monotonic counters. One registry is shared
// by an experiment runner, its run cache, and the cmd binaries' -metrics
// flag, so cache hit/miss rates, simulation counts and simulated wall-time
// are observable without attaching a profiler. All methods are safe for
// concurrent use; counters are created on first touch.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*uint64
	hists    histograms // fixed-bucket distributions, see histogram.go
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{counters: map[string]*uint64{}} }

// TenantCounter names a per-tenant counter: "tenant.<tenant>.<name>". One
// naming scheme across the scheduler (jobs served), the serving layer
// (uploads, runs, rejections) and the trace store keeps every tenant's
// activity greppable under one prefix in a metrics snapshot.
func TenantCounter(tenant, name string) string {
	return "tenant." + tenant + "." + name
}

// counter returns the cell for name, creating it if needed.
func (m *Metrics) counter(name string) *uint64 {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = new(uint64)
		m.counters[name] = c
	}
	return c
}

// Add increments the named counter by delta.
func (m *Metrics) Add(name string, delta uint64) {
	atomic.AddUint64(m.counter(name), delta)
}

// Set stores v as the named counter's value, overwriting any prior value.
// Use it to publish cumulative counters maintained elsewhere (e.g. the trace
// intern pool's process-wide hit count) into a registry snapshot.
func (m *Metrics) Set(name string, v uint64) {
	atomic.StoreUint64(m.counter(name), v)
}

// AddDuration increments the named counter by d in nanoseconds.
func (m *Metrics) AddDuration(name string, d time.Duration) {
	if d > 0 {
		m.Add(name, uint64(d.Nanoseconds()))
	}
}

// Get returns the named counter's current value (0 if never touched).
func (m *Metrics) Get(name string) uint64 {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c == nil {
		return 0
	}
	return atomic.LoadUint64(c)
}

// Snapshot returns a point-in-time copy of every counter.
func (m *Metrics) Snapshot() map[string]uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]uint64, len(m.counters))
	for name, c := range m.counters {
		out[name] = atomic.LoadUint64(c)
	}
	return out
}

// String renders the counters as a sorted table, followed by one row per
// histogram when any exist.
func (m *Metrics) String() string {
	snap := m.Snapshot()
	t := NewTable("metrics", "counter", "value")
	for _, name := range SortedKeys(snap) {
		t.AddRowf(name, snap[name])
	}
	hists := m.Histograms()
	if len(hists) == 0 {
		return t.String()
	}
	ht := NewTable("histograms", "name", "distribution")
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ht.AddRow(name, hists[name].String())
	}
	return t.String() + ht.String()
}

// WriteTo writes the rendered table, satisfying io.WriterTo.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	n, err := fmt.Fprint(w, m.String())
	return int64(n), err
}
