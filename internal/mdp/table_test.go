package mdp

import (
	"testing"
	"testing/quick"
)

func TestAssocTableGeometry(t *testing.T) {
	tb := NewAssocTable(128, 4, 16)
	if tb.Sets() != 128 || tb.Ways() != 4 || tb.TagBits() != 16 || tb.Entries() != 512 {
		t.Error("geometry accessors wrong")
	}
	// Table II PHAST: 512 entries × 29 bits payload layout.
	if got := tb.Entries() * (16 + 7 + 4 + 2); got != 512*29 {
		t.Errorf("PHAST-like storage = %d bits", got)
	}
}

func TestAssocTableRejectsBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewAssocTable(100, 4, 16) }, // not a power of two
		func() { NewAssocTable(128, 0, 16) },
		func() { NewAssocTable(128, 4, 0) },
		func() { NewAssocTable(128, 4, 33) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry should panic")
				}
			}()
			f()
		}()
	}
}

func TestAssocTableInsertLookup(t *testing.T) {
	tb := NewAssocTable(4, 2, 12)
	tb.Insert(1, Entry{Valid: true, Tag: 100, Dist: 7})
	e, w := tb.Lookup(1, 100)
	if e == nil || e.Dist != 7 || w < 0 {
		t.Fatal("inserted entry not found")
	}
	if e, _ := tb.Lookup(1, 101); e != nil {
		t.Error("wrong tag should miss")
	}
	if e, _ := tb.Lookup(2, 100); e != nil {
		t.Error("wrong set should miss")
	}
}

func TestAssocTableLRUReplacement(t *testing.T) {
	tb := NewAssocTable(2, 2, 12)
	tb.Insert(0, Entry{Valid: true, Tag: 1})
	tb.Insert(0, Entry{Valid: true, Tag: 2})
	// Touch tag 1 so tag 2 becomes LRU.
	_, w := tb.Lookup(0, 1)
	tb.Touch(0, w)
	tb.Insert(0, Entry{Valid: true, Tag: 3})
	if e, _ := tb.Lookup(0, 1); e == nil {
		t.Error("MRU entry evicted")
	}
	if e, _ := tb.Lookup(0, 2); e != nil {
		t.Error("LRU entry survived")
	}
}

func TestAssocTableVictimPrefersInvalid(t *testing.T) {
	tb := NewAssocTable(2, 4, 12)
	tb.Insert(0, Entry{Valid: true, Tag: 1})
	v := tb.Victim(0)
	if tb.At(0, v).Valid {
		t.Error("victim should be an invalid way while any exists")
	}
}

func TestAssocTableInvalidatePreservesLRUPermutation(t *testing.T) {
	tb := NewAssocTable(1, 4, 12)
	for i := uint32(1); i <= 4; i++ {
		tb.Insert(0, Entry{Valid: true, Tag: i})
	}
	tb.Invalidate(0, 2)
	// The permutation 0..3 must still hold across the set.
	seen := map[uint8]bool{}
	for w := 0; w < 4; w++ {
		seen[tb.At(0, w).lru] = true
	}
	if len(seen) != 4 {
		t.Errorf("recency values lost permutation: %v", seen)
	}
	if tb.At(0, 2).Valid {
		t.Error("invalidated entry still valid")
	}
}

// TestAssocTableLRUPermutationInvariant: after any operation sequence, each
// set's recency values remain a permutation of 0..ways-1.
func TestAssocTableLRUPermutationInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := NewAssocTable(4, 4, 10)
		for _, op := range ops {
			set := uint32(op) & 3
			tag := uint32(op>>2) & 1023
			switch (op >> 12) & 3 {
			case 0:
				tb.Insert(set, Entry{Valid: true, Tag: tag})
			case 1:
				if e, w := tb.Lookup(set, tag); e != nil {
					tb.Touch(set, w)
				}
			case 2:
				tb.Invalidate(set, int(op>>2)&3)
			default:
				tb.Reset()
			}
			for s := uint32(0); s < 4; s++ {
				var mask uint8
				for w := 0; w < 4; w++ {
					mask |= 1 << tb.At(s, w).lru
				}
				if mask != 0x0f {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceOf(t *testing.T) {
	ld := LoadInfo{StoreCount: 10}
	if d := DistanceOf(ld, StoreInfo{StoreIndex: 9}); d != 0 {
		t.Errorf("immediately previous store distance = %d, want 0", d)
	}
	if d := DistanceOf(ld, StoreInfo{StoreIndex: 5}); d != 4 {
		t.Errorf("distance = %d, want 4", d)
	}
}

func TestOutcomeFalsePositive(t *testing.T) {
	if (Outcome{Waited: true, TrueDep: false}).FalsePositive() == false {
		t.Error("unnecessary wait must be a false positive")
	}
	if (Outcome{Waited: true, TrueDep: true}).FalsePositive() {
		t.Error("justified wait is not a false positive")
	}
	if (Outcome{Waited: false}).FalsePositive() {
		t.Error("no wait, no false positive")
	}
}
