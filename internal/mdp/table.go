package mdp

import "repro/internal/histutil"

// Entry is one prediction-table entry. Field widths follow Table II: a
// partial tag, a 7-bit store distance, a saturating confidence/usefulness
// counter, and 2 LRU bits (maintained by the table).
type Entry struct {
	Valid bool
	Tag   uint32
	Dist  uint8 // 7-bit store distance
	Conf  uint8 // confidence (PHAST/NoSQ) or counter payload
	U     uint8 // usefulness (MDP-TAGE)
	lru   uint8
}

// AssocTable is a set-associative prediction table with LRU replacement,
// shared by PHAST, NoSQ, MDP-TAGE and the budget-sweep variants.
type AssocTable struct {
	sets    int
	ways    int
	tagBits int
	entries []Entry
}

// NewAssocTable builds a table with the given geometry. Sets must be a
// power of two.
func NewAssocTable(sets, ways, tagBits int) *AssocTable {
	if !histutil.Pow2(sets) {
		panic("mdp: table sets must be a power of two")
	}
	if ways <= 0 || tagBits <= 0 || tagBits > 32 {
		panic("mdp: bad table geometry")
	}
	t := &AssocTable{sets: sets, ways: ways, tagBits: tagBits, entries: make([]Entry, sets*ways)}
	// Recency counters must start as a permutation per set (0 = MRU …
	// ways-1 = LRU) or the relative-increment update cannot order ways.
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			t.entries[s*ways+w].lru = uint8(w)
		}
	}
	return t
}

// Sets returns the number of sets.
func (t *AssocTable) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *AssocTable) Ways() int { return t.ways }

// TagBits returns the partial tag width.
func (t *AssocTable) TagBits() int { return t.tagBits }

// Entries returns the total entry count.
func (t *AssocTable) Entries() int { return t.sets * t.ways }

// SetIndex reduces a hash to a set index.
func (t *AssocTable) SetIndex(hash uint64) uint32 { return uint32(hash & uint64(t.sets-1)) }

// TagOf reduces a hash to a partial tag (never 0-width).
func (t *AssocTable) TagOf(hash uint64) uint32 {
	return uint32(hash>>16) & (1<<t.tagBits - 1)
}

// Lookup returns the matching entry and its way, or (nil, -1).
func (t *AssocTable) Lookup(set uint32, tag uint32) (*Entry, int) {
	base := int(set) * t.ways
	for w := 0; w < t.ways; w++ {
		e := &t.entries[base+w]
		if e.Valid && e.Tag == tag {
			return e, w
		}
	}
	return nil, -1
}

// At returns the entry at (set, way) for provider-based commit auditing.
func (t *AssocTable) At(set uint32, way int) *Entry {
	return &t.entries[int(set)*t.ways+way]
}

// Touch marks the way most recently used.
func (t *AssocTable) Touch(set uint32, way int) {
	base := int(set) * t.ways
	old := t.entries[base+way].lru
	for w := 0; w < t.ways; w++ {
		if t.entries[base+w].lru < old {
			t.entries[base+w].lru++
		}
	}
	t.entries[base+way].lru = 0
}

// Victim returns the way to replace in the set: an invalid way if any,
// otherwise the LRU way.
func (t *AssocTable) Victim(set uint32) int {
	base := int(set) * t.ways
	victim, worst := 0, uint8(0)
	for w := 0; w < t.ways; w++ {
		if !t.entries[base+w].Valid {
			return w
		}
		if t.entries[base+w].lru >= worst {
			worst, victim = t.entries[base+w].lru, w
		}
	}
	return victim
}

// Insert writes a new entry over the victim way and returns (entry, way).
func (t *AssocTable) Insert(set uint32, e Entry) (*Entry, int) {
	w := t.Victim(set)
	slot := &t.entries[int(set)*t.ways+w]
	lru := slot.lru
	*slot = e
	slot.lru = lru
	t.Touch(set, w)
	return slot, w
}

// Invalidate clears one entry, preserving the set's recency permutation.
func (t *AssocTable) Invalidate(set uint32, way int) {
	e := &t.entries[int(set)*t.ways+way]
	lru := e.lru
	*e = Entry{lru: lru}
}

// Reset invalidates every entry, restoring the initial recency permutation.
func (t *AssocTable) Reset() {
	for s := 0; s < t.sets; s++ {
		for w := 0; w < t.ways; w++ {
			t.entries[s*t.ways+w] = Entry{lru: uint8(w)}
		}
	}
}

// SizeBits returns the storage cost given payload bits per entry beyond the
// tag (the caller knows its field widths; LRU bits are included here).
func (t *AssocTable) SizeBits(payloadBits int) int {
	lruBits := 2
	return t.Entries() * (1 + t.tagBits + payloadBits + lruBits)
}
