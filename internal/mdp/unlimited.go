package mdp

import (
	"encoding/binary"

	"repro/internal/histutil"
)

// Unlimited (aliasing-free) predictors for the §III-C study (Fig. 6): exact
// uncompressed histories stored in maps, so every effect measured is due to
// the training policy, never to table capacity or tag aliasing. Paths()
// reports how many distinct (history, PC) contexts each tracks — Fig. 6b.

// uEntry is one unlimited-table entry.
type uEntry struct {
	dist int
	conf int
	u    bool
}

// exactKey packs a load PC and an exact history into a map key.
func exactKey(pc uint64, hist *histutil.Reg, n int) string {
	var pcb [8]byte
	binary.LittleEndian.PutUint64(pcb[:], pc)
	return string(pcb[:]) + hist.Key(n)
}

// UnlimitedNoSQ is the NoSQ predictor with unbounded, alias-free tables and
// a configurable fixed history length (the x axis of Fig. 6).
type UnlimitedNoSQ struct {
	accessCounter
	noBind
	noStoreHooks

	histLen int
	pi      map[uint64]*uEntry
	ps      map[string]*uEntry

	confMax, confThres, confStep int
}

// NewUnlimitedNoSQ builds the predictor with the given history length.
func NewUnlimitedNoSQ(histLen int) *UnlimitedNoSQ {
	return &UnlimitedNoSQ{
		histLen: histLen,
		pi:      map[uint64]*uEntry{},
		ps:      map[string]*uEntry{},
		confMax: 127, confThres: 64, confStep: 16,
	}
}

// Name implements Predictor.
func (n *UnlimitedNoSQ) Name() string { return "unlimited-nosq" }

// HistLen returns the fixed history length.
func (n *UnlimitedNoSQ) HistLen() int { return n.histLen }

// Predict implements Predictor.
func (n *UnlimitedNoSQ) Predict(ld LoadInfo, hist *histutil.Reg) Prediction {
	n.reads += 2
	key := exactKey(ld.PC, hist, n.histLen)
	if e, ok := n.ps[key]; ok && e.conf >= n.confThres {
		return Prediction{Kind: Distance, Dist: e.dist, ProviderKey: key}
	}
	if e, ok := n.pi[ld.PC]; ok && e.conf >= n.confThres {
		return Prediction{Kind: Distance, Dist: e.dist, ProviderKey: "pi"}
	}
	return Prediction{Kind: NoDep}
}

// TrainViolation implements Predictor.
func (n *UnlimitedNoSQ) TrainViolation(ld LoadInfo, st StoreInfo, dist int, _ Outcome, hist *histutil.Reg) {
	if dist < 0 {
		return
	}
	n.writes += 2
	key := exactKey(ld.PC, hist, n.histLen)
	n.ps[key] = &uEntry{dist: dist, conf: n.confMax}
	n.pi[ld.PC] = &uEntry{dist: dist, conf: n.confMax}
}

// TrainCommit implements Predictor.
func (n *UnlimitedNoSQ) TrainCommit(ld LoadInfo, out Outcome, hist *histutil.Reg) {
	if out.Pred.ProviderKey == "" || !out.Waited {
		return
	}
	var e *uEntry
	if out.Pred.ProviderKey == "pi" {
		e = n.pi[ld.PC]
	} else {
		e = n.ps[out.Pred.ProviderKey]
	}
	if e == nil {
		return
	}
	n.writes++
	if out.TrueDep {
		e.conf += n.confStep
		if e.conf > n.confMax {
			e.conf = n.confMax
		}
	} else {
		e.conf /= 2
	}
}

// SizeBits implements Predictor (unbounded).
func (n *UnlimitedNoSQ) SizeBits() int { return 0 }

// Paths implements Predictor: distinct path-sensitive contexts tracked.
func (n *UnlimitedNoSQ) Paths() int { return len(n.ps) }

// UnlimitedMDPTAGE is MDP-TAGE with unbounded alias-free components over
// the (6, 2000) geometric history series. It keeps MDP-TAGE's training
// policy: allocate at the shortest length, re-allocate longer on a
// violation-despite-prediction — so its path count explodes exactly as the
// paper describes, even without capacity pressure.
type UnlimitedMDPTAGE struct {
	accessCounter
	noBind
	noStoreHooks

	hists  []int
	tables []map[string]*uEntry
	rng    uint64
}

// NewUnlimitedMDPTAGE builds the predictor.
func NewUnlimitedMDPTAGE() *UnlimitedMDPTAGE {
	hists := []int{6, 10, 17, 29, 50, 85, 146, 250, 428, 733, 1255, 2000}
	u := &UnlimitedMDPTAGE{hists: hists, rng: 0x9e3779b97f4a7c15}
	for range hists {
		u.tables = append(u.tables, map[string]*uEntry{})
	}
	return u
}

// Name implements Predictor.
func (u *UnlimitedMDPTAGE) Name() string { return "unlimited-mdptage" }

// Predict implements Predictor: longest-history exact match with u set.
func (u *UnlimitedMDPTAGE) Predict(ld LoadInfo, hist *histutil.Reg) Prediction {
	u.reads += uint64(len(u.tables))
	for c := len(u.tables) - 1; c >= 0; c-- {
		n := u.hists[c]
		if n > hist.Cap() {
			n = hist.Cap()
		}
		key := exactKey(ld.PC, hist, n)
		if e, ok := u.tables[c][key]; ok && e.u {
			return Prediction{
				Kind: Distance, Dist: e.dist,
				Provider:    ProviderRef{Valid: true, Table: c},
				ProviderKey: key,
			}
		}
	}
	return Prediction{Kind: NoDep}
}

// TrainViolation implements Predictor.
func (u *UnlimitedMDPTAGE) TrainViolation(ld LoadInfo, st StoreInfo, dist int, out Outcome, hist *histutil.Reg) {
	if dist < 0 {
		return
	}
	from := 0
	if p := out.Pred.Provider; p.Valid && p.Table+1 < len(u.tables) {
		from = p.Table + 1
	}
	n := u.hists[from]
	if n > hist.Cap() {
		n = hist.Cap()
	}
	u.tables[from][exactKey(ld.PC, hist, n)] = &uEntry{dist: dist, u: true}
	u.writes++
}

// TrainCommit implements Predictor: false dependencies reset the providing
// entry with probability 1/256, MDP-TAGE's forgetting rate.
func (u *UnlimitedMDPTAGE) TrainCommit(ld LoadInfo, out Outcome, hist *histutil.Reg) {
	p := out.Pred.Provider
	if !p.Valid || out.Pred.ProviderKey == "" {
		return
	}
	e := u.tables[p.Table][out.Pred.ProviderKey]
	if e == nil {
		return
	}
	if out.FalsePositive() {
		u.rng ^= u.rng << 13
		u.rng ^= u.rng >> 7
		u.rng ^= u.rng << 17
		if u.rng&255 == 0 {
			delete(u.tables[p.Table], out.Pred.ProviderKey)
			u.writes++
		}
	}
}

// SizeBits implements Predictor (unbounded).
func (u *UnlimitedMDPTAGE) SizeBits() int { return 0 }

// Paths implements Predictor: total contexts across all components.
func (u *UnlimitedMDPTAGE) Paths() int {
	total := 0
	for _, t := range u.tables {
		total += len(t)
	}
	return total
}
