package mdp

import "repro/internal/histutil"

// StoreVector implements Subramaniam & Loh's Store Vectors (HPCA 2006): per
// load PC, a bit vector over store-queue-relative distances; bit d set means
// "this load has conflicted with the store at distance d before", and the
// load waits for every marked older store. Vectors are periodically cleared
// to forget stale conflicts. The scheme links a load to a *set* of stores,
// which is exactly the false-dependence behaviour the paper's single-store
// observation (§III-A) argues against.
type StoreVector struct {
	accessCounter
	noBind
	noStoreHooks
	noPaths

	vectors    []uint64
	mask       uint64
	resetEvery uint64
	accesses   uint64
}

// NewStoreVector builds the predictor with 2^bits vectors of 64 distances.
func NewStoreVector(bits int, resetEvery uint64) *StoreVector {
	return &StoreVector{
		vectors:    make([]uint64, 1<<bits),
		mask:       1<<bits - 1,
		resetEvery: resetEvery,
	}
}

// DefaultStoreVector returns a 4K-vector predictor cleared every 256K
// accesses (32KB of vector storage).
func DefaultStoreVector() *StoreVector { return NewStoreVector(12, 262144) }

// Name implements Predictor.
func (s *StoreVector) Name() string { return "storevector" }

func (s *StoreVector) index(pc uint64) uint64 { return histutil.HashPC(pc) & s.mask }

// Predict implements Predictor.
func (s *StoreVector) Predict(ld LoadInfo, _ *histutil.Reg) Prediction {
	s.accesses++
	if s.resetEvery != 0 && s.accesses%s.resetEvery == 0 {
		for i := range s.vectors {
			s.vectors[i] = 0
		}
	}
	s.reads++
	v := s.vectors[s.index(ld.PC)]
	if v == 0 {
		return Prediction{Kind: NoDep}
	}
	return Prediction{Kind: Vector, Mask: v}
}

// TrainViolation implements Predictor: mark the conflicting distance.
func (s *StoreVector) TrainViolation(ld LoadInfo, _ StoreInfo, dist int, _ Outcome, _ *histutil.Reg) {
	if dist < 0 || dist > 63 {
		return
	}
	s.writes++
	s.vectors[s.index(ld.PC)] |= 1 << uint(dist)
}

// TrainCommit implements Predictor. Store Vectors has no per-entry
// confidence; forgetting happens through the periodic clear.
func (s *StoreVector) TrainCommit(LoadInfo, Outcome, *histutil.Reg) {}

// SizeBits implements Predictor.
func (s *StoreVector) SizeBits() int { return len(s.vectors) * 64 }

// CHT implements the Collision History Table of Yoaz et al. (ISCA 1999): a
// PC-indexed table of saturating counters classifying loads as colliding; a
// colliding load conservatively waits for all older unresolved stores. It is
// the oldest and most conservative baseline in the Fig. 1 timeline.
type CHT struct {
	accessCounter
	noBind
	noStoreHooks
	noPaths

	ctrs []uint8
	mask uint64
}

// NewCHT builds a CHT with 2^bits 2-bit counters.
func NewCHT(bits int) *CHT {
	return &CHT{ctrs: make([]uint8, 1<<bits), mask: 1<<bits - 1}
}

// DefaultCHT returns a 16K-counter CHT (4KB).
func DefaultCHT() *CHT { return NewCHT(14) }

// Name implements Predictor.
func (c *CHT) Name() string { return "cht" }

func (c *CHT) index(pc uint64) uint64 { return histutil.HashPC(pc) & c.mask }

// Predict implements Predictor.
func (c *CHT) Predict(ld LoadInfo, _ *histutil.Reg) Prediction {
	c.reads++
	if c.ctrs[c.index(ld.PC)] >= 2 {
		return Prediction{Kind: WaitAll}
	}
	return Prediction{Kind: NoDep}
}

// TrainViolation implements Predictor.
func (c *CHT) TrainViolation(ld LoadInfo, _ StoreInfo, _ int, _ Outcome, _ *histutil.Reg) {
	i := c.index(ld.PC)
	if c.ctrs[i] < 3 {
		c.ctrs[i]++
		c.writes++
	}
}

// TrainCommit implements Predictor: unnecessary waits decay the counter.
func (c *CHT) TrainCommit(ld LoadInfo, out Outcome, _ *histutil.Reg) {
	if out.FalsePositive() {
		i := c.index(ld.PC)
		if c.ctrs[i] > 0 {
			c.ctrs[i]--
			c.writes++
		}
	}
}

// SizeBits implements Predictor.
func (c *CHT) SizeBits() int { return len(c.ctrs) * 2 }
