package mdp

import "repro/internal/histutil"

// Ideal is the oracle the paper normalises every predictor against: a load
// waits exactly for the youngest actually conflicting older in-flight store
// and never otherwise — zero violations, zero false dependencies, zero
// storage. It reads the oracle fields the pipeline fills from its exact
// knowledge of the in-flight stream.
type Ideal struct {
	accessCounter
	noBind
	noStoreHooks
	noPaths
}

// NewIdeal returns the oracle predictor.
func NewIdeal() *Ideal { return &Ideal{} }

// Name implements Predictor.
func (*Ideal) Name() string { return "ideal" }

// Predict implements Predictor using the pipeline's oracle fields.
func (*Ideal) Predict(ld LoadInfo, _ *histutil.Reg) Prediction {
	if ld.OracleDep {
		return Prediction{Kind: Distance, Dist: ld.OracleDist}
	}
	return Prediction{Kind: NoDep}
}

// NeedsOracle marks the predictor as consuming LoadInfo's oracle fields.
// The pipeline's exact store-queue scan that fills them is pure overhead for
// every realistic predictor, so it only runs when the bound predictor
// declares this method (predictors embedding Ideal inherit it).
func (*Ideal) NeedsOracle() bool { return true }

// TrainViolation implements Predictor (the oracle never mispredicts, but the
// hook must exist).
func (*Ideal) TrainViolation(LoadInfo, StoreInfo, int, Outcome, *histutil.Reg) {}

// TrainCommit implements Predictor.
func (*Ideal) TrainCommit(LoadInfo, Outcome, *histutil.Reg) {}

// SizeBits implements Predictor.
func (*Ideal) SizeBits() int { return 0 }

// None always predicts no dependence: the maximally speculative baseline
// that shows the raw memory-order-violation exposure of a machine.
type None struct {
	accessCounter
	noBind
	noStoreHooks
	noPaths
}

// NewNone returns the always-speculate predictor.
func NewNone() *None { return &None{} }

// Name implements Predictor.
func (*None) Name() string { return "none" }

// Predict implements Predictor.
func (*None) Predict(LoadInfo, *histutil.Reg) Prediction { return Prediction{Kind: NoDep} }

// TrainViolation implements Predictor.
func (*None) TrainViolation(LoadInfo, StoreInfo, int, Outcome, *histutil.Reg) {}

// TrainCommit implements Predictor.
func (*None) TrainCommit(LoadInfo, Outcome, *histutil.Reg) {}

// SizeBits implements Predictor.
func (*None) SizeBits() int { return 0 }

// AlwaysWait makes every load wait for all older stores — the in-order
// extreme that trades every violation for a false dependence.
type AlwaysWait struct {
	accessCounter
	noBind
	noStoreHooks
	noPaths
}

// NewAlwaysWait returns the fully conservative predictor.
func NewAlwaysWait() *AlwaysWait { return &AlwaysWait{} }

// Name implements Predictor.
func (*AlwaysWait) Name() string { return "alwayswait" }

// Predict implements Predictor.
func (*AlwaysWait) Predict(LoadInfo, *histutil.Reg) Prediction { return Prediction{Kind: WaitAll} }

// TrainViolation implements Predictor.
func (*AlwaysWait) TrainViolation(LoadInfo, StoreInfo, int, Outcome, *histutil.Reg) {}

// TrainCommit implements Predictor.
func (*AlwaysWait) TrainCommit(LoadInfo, Outcome, *histutil.Reg) {}

// SizeBits implements Predictor.
func (*AlwaysWait) SizeBits() int { return 0 }
