// Package mdp defines the memory dependence predictor interface the
// out-of-order core drives, the shared set-associative prediction table, and
// the state-of-the-art baseline predictors the paper compares against:
// Store Sets, the NoSQ predictor, MDP-TAGE (and its MDP-TAGE-S variant),
// Store Vectors, and CHT, plus the Ideal and None reference points and the
// unlimited (aliasing-free) study versions of NoSQ and MDP-TAGE.
//
// PHAST itself — the paper's contribution — lives in package core.
package mdp

import "repro/internal/histutil"

// PredKind tells the scheduler how to interpret a prediction.
type PredKind uint8

const (
	// NoDep predicts the load is safe to execute speculatively.
	NoDep PredKind = iota
	// Distance predicts a dependence on the store at the given store
	// distance (0 = the youngest store older than the load).
	Distance
	// StoreSeq predicts a dependence on one specific dynamic store
	// (Store Sets' last-fetched-store mechanism).
	StoreSeq
	// WaitAll makes the load wait for every older store to resolve.
	WaitAll
	// Vector makes the load wait for each older store whose distance bit is
	// set in Mask (Store Vectors).
	Vector
)

// Prediction is the answer a predictor gives for one dispatched load.
type Prediction struct {
	Kind PredKind
	// Dist is the store distance for Kind == Distance.
	Dist int
	// Seq is the dynamic store sequence number for Kind == StoreSeq.
	Seq uint64
	// Mask is the distance bit-vector for Kind == Vector (bit d = wait for
	// the store at distance d).
	Mask uint64

	// Provider identifies the table entry that supplied the prediction so
	// the predictor can audit it at commit (opaque to the pipeline).
	Provider ProviderRef
	// ProviderKey is the map key of the providing entry for unlimited
	// (map-backed) predictors (opaque to the pipeline).
	ProviderKey string
}

// ProviderRef locates a predicting entry for commit-time auditing.
type ProviderRef struct {
	Valid bool
	Table int
	Set   uint32
	Way   uint8
	Tag   uint32
}

// LoadInfo describes a dispatched load.
type LoadInfo struct {
	PC  uint64
	Seq uint64
	// BranchCount is the decode-time copy of the global divergent-branch
	// counter (the paper's history length register).
	BranchCount uint64
	// StoreCount is the number of stores dispatched before this load; the
	// store at distance d has StoreIndex == StoreCount-1-d.
	StoreCount uint64

	// Oracle information, filled by the pipeline from its exact knowledge of
	// the in-flight stream. Only the Ideal predictor may read these fields.
	OracleDep  bool
	OracleDist int
}

// StoreInfo describes a dispatched or conflicting store.
type StoreInfo struct {
	PC  uint64
	Seq uint64
	// BranchCount is the decode-time divergent-branch counter copy.
	BranchCount uint64
	// StoreIndex is the global allocation index of this store.
	StoreIndex uint64
}

// Outcome is the commit-time audit of a load's prediction.
type Outcome struct {
	// Pred is the prediction the load dispatched with.
	Pred Prediction
	// Violated reports the load was squashed by a memory order violation.
	Violated bool
	// Waited reports the prediction delayed the load's execution.
	Waited bool
	// TrueDep reports the load actually overlapped the store(s) it waited
	// for; Waited && !TrueDep is a false dependence.
	TrueDep bool
	// ActualDep reports some older in-flight store overlapped the load.
	ActualDep bool
	// ActualDist is the distance of the youngest such store (valid when
	// ActualDep).
	ActualDist int
}

// FalsePositive reports whether the outcome is a false dependence.
func (o Outcome) FalsePositive() bool { return o.Waited && !o.TrueDep }

// Predictor is a memory dependence predictor. The pipeline calls, in order:
// Predict at load dispatch (with the decode-time history), StoreDispatch at
// store dispatch, TrainViolation at commit of a squashed load (with the
// commit-time history and the true youngest conflicting store), TrainCommit
// at commit of every load, and StoreCommit at store commit.
type Predictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Bind attaches the predictor to the core's decode-time and commit-time
	// divergent-branch history registers before simulation starts.
	// Predictors register incremental folds on them here.
	Bind(decode, commit *histutil.Reg)
	// Predict returns the dependence decision for a dispatching load.
	Predict(ld LoadInfo, hist *histutil.Reg) Prediction
	// StoreDispatch observes a dispatching store and may return the sequence
	// number of an older store this one must wait for (Store Sets
	// serialisation); 0 means no constraint.
	StoreDispatch(st StoreInfo) uint64
	// StoreCommit observes a committing store.
	StoreCommit(st StoreInfo)
	// TrainViolation learns a true dependence detected at the commit of a
	// squashed load. dist is the store distance of the conflicting store;
	// out carries the (wrong or absent) prediction the load ran with.
	TrainViolation(ld LoadInfo, st StoreInfo, dist int, out Outcome, hist *histutil.Reg)
	// TrainCommit audits a committing, non-squashed load.
	TrainCommit(ld LoadInfo, out Outcome, hist *histutil.Reg)
	// SizeBits returns the storage budget in bits (0 for idealised models).
	SizeBits() int
	// Paths returns how many distinct paths/entries an unlimited predictor
	// tracks (0 for finite predictors).
	Paths() int
	// Accesses returns cumulative table reads and writes (energy model).
	Accesses() (reads, writes uint64)
}

// DistanceOf computes the store distance between a load and an older store
// given their allocation indices (paper §II: number of stores older than the
// load but younger than the conflicting store).
func DistanceOf(ld LoadInfo, st StoreInfo) int {
	return int(ld.StoreCount - 1 - st.StoreIndex)
}

// accessCounter implements the Accesses bookkeeping shared by predictors.
type accessCounter struct {
	reads, writes uint64
}

// Accesses implements the Predictor bookkeeping.
func (a *accessCounter) Accesses() (uint64, uint64) { return a.reads, a.writes }

// noBind provides the no-op Bind for predictors that do not fold history.
type noBind struct{}

// Bind implements Predictor as a no-op.
func (noBind) Bind(decode, commit *histutil.Reg) {}

// noStoreHooks provides no-op store hooks for distance-based predictors
// (only Store Sets constrains stores).
type noStoreHooks struct{}

// StoreDispatch implements Predictor with no store constraints.
func (noStoreHooks) StoreDispatch(st StoreInfo) uint64 { return 0 }

// StoreCommit implements Predictor as a no-op.
func (noStoreHooks) StoreCommit(st StoreInfo) {}

// noPaths provides the zero Paths answer for finite predictors.
type noPaths struct{}

// Paths implements Predictor for finite predictors.
func (noPaths) Paths() int { return 0 }
