package mdp

import "repro/internal/histutil"

// MDPTAGE implements Perais & Seznec's TAGE-based memory dependence
// predictor (PACT 2018's Omnipredictor, used standalone as in the paper's
// evaluation): tagged components indexed with geometrically increasing
// branch history lengths. An entry holds a partial tag, a usefulness bit
// that gates the prediction, and a store distance widened to 7 bits so all
// in-flight distances are representable.
//
// Training is the brute-force exploration the paper criticises: a conflict
// with no prior prediction allocates at the shortest history; a conflict
// despite a prediction allocates at a longer history than the provider.
// Usefulness bits are cleared periodically, and a false dependence resets
// the providing entry with probability 1/256.
type MDPTAGE struct {
	accessCounter
	noStoreHooks
	noPaths

	name     string
	tables   []*AssocTable
	hists    []int
	tagBits  []int
	foldsD   []*histutil.Fold
	foldWide int

	uResetEvery uint64
	lruBits     int
	accesses    uint64
	rng         uint64
}

// MDPTAGEConfig sizes the predictor.
type MDPTAGEConfig struct {
	Name        string
	Histories   []int // per component, shortest first
	Entries     []int // entries per component (4-way tables)
	TagBits     []int // per component
	UResetEvery uint64
	// LRUBits charged per entry in SizeBits. Table II charges replacement
	// state for MDP-TAGE-S but not for the original MDP-TAGE.
	LRUBits int
}

// DefaultMDPTAGEConfig returns the Table II standalone MDP-TAGE: 12
// components over the (6, 2000) geometric series, 16K entries total,
// 7–15-bit tags — 38.625KB.
func DefaultMDPTAGEConfig() MDPTAGEConfig {
	// 6 × (2000/6)^(i/11), rounded.
	hists := []int{6, 10, 17, 29, 50, 85, 146, 250, 428, 733, 1255, 2000}
	entries := []int{2048, 2048, 2048, 2048, 1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024}
	tags := []int{7, 8, 10, 11, 12, 12, 13, 13, 14, 14, 15, 15}
	return MDPTAGEConfig{
		Name: "mdptage", Histories: hists, Entries: entries, TagBits: tags,
		UResetEvery: 512 << 10,
	}
}

// ShortMDPTAGEConfig returns MDP-TAGE-S: the same predictor restructured
// with PHAST's table count and history lengths (Table II: 8 tables, 4K
// entries, 16-bit tags — 13KB), isolating the value of PHAST's history
// length *selection* from its table organisation.
func ShortMDPTAGEConfig() MDPTAGEConfig {
	hists := []int{0, 2, 4, 6, 8, 12, 16, 32}
	entries := make([]int, 8)
	tags := make([]int, 8)
	for i := range entries {
		entries[i] = 512
		tags[i] = 16
	}
	return MDPTAGEConfig{
		Name: "mdptage-s", Histories: hists, Entries: entries, TagBits: tags,
		UResetEvery: 512 << 10, LRUBits: 2,
	}
}

// NewMDPTAGE builds the predictor.
func NewMDPTAGE(cfg MDPTAGEConfig) *MDPTAGE {
	if len(cfg.Histories) != len(cfg.Entries) || len(cfg.Entries) != len(cfg.TagBits) {
		panic("mdp: MDPTAGE config slices must have equal length")
	}
	m := &MDPTAGE{
		name:        cfg.Name,
		hists:       cfg.Histories,
		tagBits:     cfg.TagBits,
		uResetEvery: cfg.UResetEvery,
		lruBits:     cfg.LRUBits,
		foldWide:    24,
		rng:         0xdeadbeefcafef00d,
	}
	for i, n := range cfg.Entries {
		m.tables = append(m.tables, NewAssocTable(n/4, 4, cfg.TagBits[i]))
	}
	return m
}

// Name implements Predictor.
func (m *MDPTAGE) Name() string { return m.name }

// Bind implements Predictor: prediction folds are incremental on the
// decode-time register; allocation folds on demand from the register passed
// to TrainViolation (allocations only happen on violations, so the on-demand
// cost is negligible).
func (m *MDPTAGE) Bind(decode, commit *histutil.Reg) {
	for _, h := range m.hists {
		m.foldsD = append(m.foldsD, decode.NewFold(h, m.foldWide))
	}
	_ = commit
}

func (m *MDPTAGE) hash(pc uint64, comp int, folded uint64) uint64 {
	return histutil.Mix(histutil.HashPC(pc)^uint64(comp)*0x9e37, folded^histutil.HashPCTag(pc)<<1)
}

// foldOf folds the training history for component c from the given
// register, capping at the register capacity.
func (m *MDPTAGE) foldOf(c int, hist *histutil.Reg) uint64 {
	n := m.hists[c]
	if n > hist.Cap() {
		n = hist.Cap()
	}
	return hist.Fold(n, m.foldWide)
}

func (m *MDPTAGE) nextRand() uint64 {
	m.rng ^= m.rng << 13
	m.rng ^= m.rng >> 7
	m.rng ^= m.rng << 17
	return m.rng
}

// Predict implements Predictor: the longest-history tag match with a set
// usefulness bit provides the distance.
func (m *MDPTAGE) Predict(ld LoadInfo, _ *histutil.Reg) Prediction {
	m.reads += uint64(len(m.tables))
	m.tick()
	for c := len(m.tables) - 1; c >= 0; c-- {
		t := m.tables[c]
		h := m.hash(ld.PC, c, m.foldsD[c].Value())
		set, tag := t.SetIndex(h), t.TagOf(h)
		if e, w := t.Lookup(set, tag); e != nil {
			t.Touch(set, w)
			if e.U != 0 {
				return Prediction{
					Kind: Distance, Dist: int(e.Dist),
					Provider: ProviderRef{Valid: true, Table: c, Set: set, Way: uint8(w), Tag: tag},
				}
			}
		}
	}
	return Prediction{Kind: NoDep}
}

func (m *MDPTAGE) tick() {
	m.accesses++
	if m.uResetEvery != 0 && m.accesses%m.uResetEvery == 0 {
		for _, t := range m.tables {
			for s := uint32(0); int(s) < t.Sets(); s++ {
				for w := 0; w < t.Ways(); w++ {
					t.At(s, w).U = 0
				}
			}
		}
	}
}

// TrainViolation implements Predictor. If the squashed load had no
// prediction, allocate at the shortest history; if it had a (wrong)
// prediction from component c, allocate at a longer component. This is the
// geometric exploration PHAST's length selection avoids.
func (m *MDPTAGE) TrainViolation(ld LoadInfo, st StoreInfo, dist int, out Outcome, hist *histutil.Reg) {
	if dist < 0 || dist > 127 {
		return
	}
	from := 0
	if p := out.Pred.Provider; p.Valid && p.Table+1 < len(m.tables) {
		from = p.Table + 1
	}
	m.allocate(ld, from, uint8(dist), hist)
}

func (m *MDPTAGE) allocate(ld LoadInfo, from int, dist uint8, hist *histutil.Reg) {
	for c := from; c < len(m.tables); c++ {
		t := m.tables[c]
		h := m.hash(ld.PC, c, m.foldOf(c, hist))
		set, tag := t.SetIndex(h), t.TagOf(h)
		if e, w := t.Lookup(set, tag); e != nil {
			// Same context already tracked here: refresh it.
			e.Dist, e.U = dist, 1
			t.Touch(set, w)
			m.writes++
			return
		}
		if v := t.Victim(set); !t.At(set, v).Valid || t.At(set, v).U == 0 {
			t.Insert(set, Entry{Valid: true, Tag: tag, Dist: dist, U: 1})
			m.writes++
			return
		}
	}
	// All candidate entries useful: degrade one at random to make room later.
	c := from + int(m.nextRand())%(len(m.tables)-from)
	t := m.tables[c]
	h := m.hash(ld.PC, c, m.foldOf(c, hist))
	set := t.SetIndex(h)
	t.At(set, t.Victim(set)).U = 0
	m.writes++
}

// TrainCommit implements Predictor: a correct wait refreshes the provider; a
// false dependence resets it with probability 1/256 (the paper's tuned
// forgetting rate) — otherwise the stale entry keeps stalling the load.
func (m *MDPTAGE) TrainCommit(ld LoadInfo, out Outcome, _ *histutil.Reg) {
	p := out.Pred.Provider
	if !p.Valid {
		return
	}
	e := m.tables[p.Table].At(p.Set, int(p.Way))
	if !e.Valid || e.Tag != p.Tag {
		return
	}
	if out.Waited && out.TrueDep {
		e.U = 1
		m.writes++
	} else if out.FalsePositive() {
		if m.nextRand()&255 == 0 {
			m.tables[p.Table].Invalidate(p.Set, int(p.Way))
			m.writes++
		}
	}
}

// SizeBits implements Predictor: per entry a tag, a 7-bit distance and the
// usefulness bit, plus the configuration's replacement-state charge (Table
// II charges 2 LRU bits for MDP-TAGE-S and none for MDP-TAGE).
func (m *MDPTAGE) SizeBits() int {
	total := 0
	for _, t := range m.tables {
		total += t.Entries() * (t.TagBits() + 7 + 1 + m.lruBits)
	}
	return total
}
