package mdp

import (
	"testing"

	"repro/internal/histutil"
)

// newHists builds bound decode/commit history registers for a predictor.
func newHists(p Predictor) (*histutil.Reg, *histutil.Reg) {
	d, c := histutil.NewReg(2048), histutil.NewReg(2048)
	p.Bind(d, c)
	return d, c
}

func TestStoreSetsLearnsAndSerialises(t *testing.T) {
	ss := NewStoreSets(DefaultStoreSetsConfig())
	d, c := newHists(ss)

	ld := LoadInfo{PC: 0x1000, Seq: 10, StoreCount: 5}
	st := StoreInfo{PC: 0x2000, Seq: 9, StoreIndex: 4}
	if p := ss.Predict(ld, d); p.Kind != NoDep {
		t.Fatal("cold Store Sets should predict no dependence")
	}
	ss.TrainViolation(ld, st, 0, Outcome{}, c)

	// The store must now claim the last-fetched-store slot...
	if dep := ss.StoreDispatch(StoreInfo{PC: 0x2000, Seq: 20, StoreIndex: 8}); dep != 0 {
		t.Errorf("first store of the set should not serialise, got %d", dep)
	}
	// ...and the load must depend on it.
	p := ss.Predict(LoadInfo{PC: 0x1000, Seq: 21, StoreCount: 9}, d)
	if p.Kind != StoreSeq || p.Seq != 20 {
		t.Fatalf("load should depend on the last fetched store, got %+v", p)
	}
	// A second instance of the store serialises behind the first.
	if dep := ss.StoreDispatch(StoreInfo{PC: 0x2000, Seq: 22, StoreIndex: 9}); dep != 20 {
		t.Errorf("same-set store should serialise behind seq 20, got %d", dep)
	}
	// Committing the last fetched store clears the slot.
	ss.StoreCommit(StoreInfo{PC: 0x2000, Seq: 22})
	if p := ss.Predict(LoadInfo{PC: 0x1000, Seq: 30, StoreCount: 12}, d); p.Kind != NoDep {
		t.Errorf("after the set's stores commit, the load should run free, got %+v", p)
	}
}

func TestStoreSetsMerging(t *testing.T) {
	ss := NewStoreSets(DefaultStoreSetsConfig())
	_, c := newHists(ss)
	// Violation 1 creates a set for (load A, store X).
	ss.TrainViolation(LoadInfo{PC: 0xA}, StoreInfo{PC: 0x100}, 0, Outcome{}, c)
	// Violation 2: load B with store X must join X's existing set.
	ss.TrainViolation(LoadInfo{PC: 0xB}, StoreInfo{PC: 0x100}, 0, Outcome{}, c)
	sa := ss.ssit[ss.ssitIndex(0xA)]
	sb := ss.ssit[ss.ssitIndex(0xB)]
	sx := ss.ssit[ss.ssitIndex(0x100)]
	if !sa.valid || !sb.valid || !sx.valid {
		t.Fatal("all three PCs should be in sets")
	}
	if sa.ssid != sx.ssid || sb.ssid != sx.ssid {
		t.Errorf("merging rule violated: ssids %d %d %d", sa.ssid, sb.ssid, sx.ssid)
	}
}

func TestStoreSetsPeriodicReset(t *testing.T) {
	cfg := DefaultStoreSetsConfig()
	cfg.ResetEvery = 10
	ss := NewStoreSets(cfg)
	d, c := newHists(ss)
	ss.TrainViolation(LoadInfo{PC: 0xA}, StoreInfo{PC: 0x100}, 0, Outcome{}, c)
	for i := 0; i < 12; i++ {
		ss.Predict(LoadInfo{PC: 0xA, Seq: uint64(i)}, d)
	}
	if ss.ssit[ss.ssitIndex(0xA)].valid {
		t.Error("periodic reset should have cleared the SSIT")
	}
}

func TestStoreSetsSizeMatchesTableII(t *testing.T) {
	ss := NewStoreSets(DefaultStoreSetsConfig())
	if kb := float64(ss.SizeBits()) / 8192; kb != 18.5 {
		t.Errorf("Store Sets size = %.3f KB, want 18.5 (Table II)", kb)
	}
}

func TestNoSQLearnsDistance(t *testing.T) {
	n := NewNoSQ(DefaultNoSQConfig())
	d, c := newHists(n)
	ld := LoadInfo{PC: 0x1000, StoreCount: 10}
	if p := n.Predict(ld, d); p.Kind != NoDep {
		t.Fatal("cold NoSQ should predict no dependence")
	}
	n.TrainViolation(ld, StoreInfo{StoreIndex: 7}, 2, Outcome{}, c)
	p := n.Predict(ld, d)
	if p.Kind != Distance || p.Dist != 2 {
		t.Fatalf("NoSQ should predict distance 2, got %+v", p)
	}
	if !p.Provider.Valid {
		t.Error("prediction must carry a provider for commit auditing")
	}
}

func TestNoSQConfidenceHalvesOnFalseDep(t *testing.T) {
	n := NewNoSQ(DefaultNoSQConfig())
	d, c := newHists(n)
	ld := LoadInfo{PC: 0x1000, StoreCount: 10}
	n.TrainViolation(ld, StoreInfo{StoreIndex: 7}, 2, Outcome{}, c)
	for i := 0; i < 8; i++ {
		p := n.Predict(ld, d)
		if p.Kind != Distance {
			break
		}
		n.TrainCommit(ld, Outcome{Pred: p, Waited: true, TrueDep: false}, c)
	}
	if p := n.Predict(ld, d); p.Kind != NoDep {
		t.Error("repeated false dependencies should silence the entry")
	}
	// A fresh violation re-arms it at full confidence.
	n.TrainViolation(ld, StoreInfo{StoreIndex: 7}, 2, Outcome{}, c)
	if p := n.Predict(ld, d); p.Kind != Distance {
		t.Error("violation should re-arm the entry")
	}
}

func TestNoSQPathSensitiveWins(t *testing.T) {
	n := NewNoSQ(DefaultNoSQConfig())
	d, c := newHists(n)
	ld := LoadInfo{PC: 0x1000, StoreCount: 20}
	// Path 1 trains distance 3.
	d.Push(histutil.NewEntry(false, true, 0x10))
	c.Push(histutil.NewEntry(false, true, 0x10))
	n.TrainViolation(ld, StoreInfo{StoreIndex: 16}, 3, Outcome{}, c)
	if p := n.Predict(ld, d); p.Kind != Distance || p.Dist != 3 {
		t.Fatalf("path 1 should give distance 3, got %+v", p)
	}
	// Path 2 trains distance 5: the path-sensitive table disambiguates.
	for i := 0; i < 8; i++ {
		d.Push(histutil.NewEntry(false, false, 0x20))
		c.Push(histutil.NewEntry(false, false, 0x20))
	}
	n.TrainViolation(ld, StoreInfo{StoreIndex: 14}, 5, Outcome{}, c)
	if p := n.Predict(ld, d); p.Kind != Distance || p.Dist != 5 {
		t.Fatalf("path 2 should give distance 5, got %+v", p)
	}
}

func TestNoSQSizeMatchesTableII(t *testing.T) {
	n := NewNoSQ(DefaultNoSQConfig())
	if kb := float64(n.SizeBits()) / 8192; kb != 19 {
		t.Errorf("NoSQ size = %.3f KB, want 19 (Table II)", kb)
	}
}

func TestMDPTAGELongestMatchWins(t *testing.T) {
	m := NewMDPTAGE(ShortMDPTAGEConfig()) // history lengths 0,2,4,...
	d, c := newHists(m)
	ld := LoadInfo{PC: 0x1000, StoreCount: 30}
	// First violation with no prediction allocates at the shortest length.
	m.TrainViolation(ld, StoreInfo{StoreIndex: 28}, 1, Outcome{}, c)
	p := m.Predict(ld, d)
	if p.Kind != Distance || p.Dist != 1 {
		t.Fatalf("MDP-TAGE should predict distance 1, got %+v", p)
	}
	if p.Provider.Table != 0 {
		t.Fatalf("first allocation should be the shortest component, got %d", p.Provider.Table)
	}
	// A violation despite that prediction must allocate a longer component.
	m.TrainViolation(ld, StoreInfo{StoreIndex: 27}, 2, Outcome{Pred: p}, c)
	p2 := m.Predict(ld, d)
	if p2.Provider.Table <= p.Provider.Table {
		t.Errorf("re-allocation should use a longer history (%d -> %d)",
			p.Provider.Table, p2.Provider.Table)
	}
	if p2.Dist != 2 {
		t.Errorf("longest match should give the new distance, got %d", p2.Dist)
	}
}

func TestMDPTAGESizes(t *testing.T) {
	if kb := float64(NewMDPTAGE(DefaultMDPTAGEConfig()).SizeBits()) / 8192; kb < 38 || kb > 39.5 {
		t.Errorf("MDP-TAGE size = %.2f KB, want ≈ 38.6 (Table II)", kb)
	}
	if kb := float64(NewMDPTAGE(ShortMDPTAGEConfig()).SizeBits()) / 8192; kb != 13 {
		t.Errorf("MDP-TAGE-S size = %.3f KB, want 13 (Table II)", kb)
	}
}

func TestStoreVectorAccumulatesDistances(t *testing.T) {
	sv := DefaultStoreVector()
	d, c := newHists(sv)
	ld := LoadInfo{PC: 0x1000, StoreCount: 10}
	sv.TrainViolation(ld, StoreInfo{}, 1, Outcome{}, c)
	sv.TrainViolation(ld, StoreInfo{}, 4, Outcome{}, c)
	p := sv.Predict(ld, d)
	if p.Kind != Vector || p.Mask != (1<<1|1<<4) {
		t.Fatalf("store vector = %+v, want bits 1 and 4", p)
	}
	// Out-of-range distances are ignored.
	sv.TrainViolation(ld, StoreInfo{}, 64, Outcome{}, c)
	if p := sv.Predict(ld, d); p.Mask != (1<<1 | 1<<4) {
		t.Error("distance ≥ 64 must not corrupt the vector")
	}
}

func TestCHTWaitsAllAfterViolations(t *testing.T) {
	cht := DefaultCHT()
	d, c := newHists(cht)
	ld := LoadInfo{PC: 0x1000}
	if p := cht.Predict(ld, d); p.Kind != NoDep {
		t.Fatal("cold CHT should predict no dependence")
	}
	cht.TrainViolation(ld, StoreInfo{}, 0, Outcome{}, c)
	cht.TrainViolation(ld, StoreInfo{}, 0, Outcome{}, c)
	if p := cht.Predict(ld, d); p.Kind != WaitAll {
		t.Error("two violations should classify the load as colliding")
	}
	// False dependencies decay the counter back below the threshold.
	cht.TrainCommit(ld, Outcome{Pred: Prediction{Kind: WaitAll}, Waited: true}, c)
	cht.TrainCommit(ld, Outcome{Pred: Prediction{Kind: WaitAll}, Waited: true}, c)
	if p := cht.Predict(ld, d); p.Kind != NoDep {
		t.Error("false dependencies should decay the CHT counter")
	}
}

func TestIdealUsesOracle(t *testing.T) {
	id := NewIdeal()
	d, _ := newHists(id)
	if p := id.Predict(LoadInfo{OracleDep: true, OracleDist: 3}, d); p.Kind != Distance || p.Dist != 3 {
		t.Error("ideal must relay the oracle distance")
	}
	if p := id.Predict(LoadInfo{OracleDep: false}, d); p.Kind != NoDep {
		t.Error("ideal must relay the oracle no-dependence")
	}
}

func TestSimplePredictors(t *testing.T) {
	d, _ := newHists(NewNone())
	if p := NewNone().Predict(LoadInfo{OracleDep: true}, d); p.Kind != NoDep {
		t.Error("none must always speculate")
	}
	if p := NewAlwaysWait().Predict(LoadInfo{}, d); p.Kind != WaitAll {
		t.Error("alwayswait must always wait")
	}
}

func TestUnlimitedNoSQExactHistories(t *testing.T) {
	u := NewUnlimitedNoSQ(4)
	d, c := newHists(u)
	ld := LoadInfo{PC: 0x1000, StoreCount: 10}
	for i := 0; i < 4; i++ {
		e := histutil.NewEntry(false, i%2 == 0, uint64(i))
		d.Push(e)
		c.Push(e)
	}
	u.TrainViolation(ld, StoreInfo{StoreIndex: 8}, 1, Outcome{}, c)
	if p := u.Predict(ld, d); p.Kind != Distance || p.Dist != 1 {
		t.Fatalf("trained context should predict, got %+v", p)
	}
	if u.Paths() != 1 {
		t.Errorf("paths = %d, want 1", u.Paths())
	}
	// A different history misses the path-sensitive table (exact keys), so
	// the prediction falls back to the path-insensitive one — the NoSQ
	// design's behaviour, not aliasing.
	d.Push(histutil.NewEntry(true, true, 7))
	p := u.Predict(ld, d)
	if p.Kind != Distance || p.ProviderKey != "pi" {
		t.Errorf("changed history should fall back to the path-insensitive table, got %+v", p)
	}
}

func TestUnlimitedMDPTAGEPathGrowth(t *testing.T) {
	u := NewUnlimitedMDPTAGE()
	d, c := newHists(u)
	ld := LoadInfo{PC: 0x1000, StoreCount: 10}
	// Distinct 6-branch contexts each allocate a fresh entry — the path
	// explosion of §III-C.
	for i := 0; i < 20; i++ {
		e := histutil.NewEntry(false, i%3 == 0, uint64(i))
		d.Push(e)
		c.Push(e)
		u.TrainViolation(ld, StoreInfo{StoreIndex: 8}, 1, Outcome{}, c)
	}
	if u.Paths() < 15 {
		t.Errorf("unlimited MDP-TAGE should track many contexts, got %d", u.Paths())
	}
}

func TestUnlimitedNoSQCommitDynamics(t *testing.T) {
	u := NewUnlimitedNoSQ(2)
	d, c := newHists(u)
	ld := LoadInfo{PC: 0x1000, StoreCount: 10}
	u.TrainViolation(ld, StoreInfo{StoreIndex: 8}, 1, Outcome{}, c)
	p := u.Predict(ld, d)
	if p.Kind != Distance {
		t.Fatal("should predict after training")
	}
	// Halving on false dependencies silences both tables (the path-
	// sensitive provider first, then the path-insensitive fallback), like
	// the finite NoSQ.
	for i := 0; i < 10; i++ {
		p = u.Predict(ld, d)
		if p.Kind != Distance {
			break
		}
		u.TrainCommit(ld, Outcome{Pred: p, Waited: true, TrueDep: false}, c)
	}
	if got := u.Predict(ld, d); got.Kind != NoDep {
		t.Error("false dependencies should silence the unlimited entry")
	}
	// Reinforcement saturates without overflowing.
	u.TrainViolation(ld, StoreInfo{StoreIndex: 8}, 1, Outcome{}, c)
	p = u.Predict(ld, d)
	for i := 0; i < 20; i++ {
		u.TrainCommit(ld, Outcome{Pred: p, Waited: true, TrueDep: true}, c)
	}
	if got := u.Predict(ld, d); got.Kind != Distance {
		t.Error("reinforced entry should keep predicting")
	}
	if r, w := u.Accesses(); r == 0 || w == 0 {
		t.Error("access counters should move")
	}
}

func TestUnlimitedMDPTAGEClimbsOnWrongPrediction(t *testing.T) {
	u := NewUnlimitedMDPTAGE()
	d, c := newHists(u)
	ld := LoadInfo{PC: 0x1000, StoreCount: 20}
	u.TrainViolation(ld, StoreInfo{StoreIndex: 18}, 1, Outcome{}, c)
	p := u.Predict(ld, d)
	if !p.Provider.Valid || p.Provider.Table != 0 {
		t.Fatalf("first allocation at shortest component, got %+v", p.Provider)
	}
	// Violation despite the prediction: allocate a longer component.
	u.TrainViolation(ld, StoreInfo{StoreIndex: 17}, 2, Outcome{Pred: p}, c)
	p2 := u.Predict(ld, d)
	if p2.Provider.Table <= p.Provider.Table {
		t.Errorf("expected longer component, got %d -> %d", p.Provider.Table, p2.Provider.Table)
	}
	if u.SizeBits() != 0 || u.Paths() < 2 {
		t.Error("unlimited accounting wrong")
	}
}

func TestStoreVectorIgnoresCommitAudit(t *testing.T) {
	sv := DefaultStoreVector()
	d, c := newHists(sv)
	ld := LoadInfo{PC: 0x1000, StoreCount: 10}
	sv.TrainViolation(ld, StoreInfo{}, 2, Outcome{}, c)
	p := sv.Predict(ld, d)
	sv.TrainCommit(ld, Outcome{Pred: p, Waited: true, TrueDep: false}, c)
	if got := sv.Predict(ld, d); got.Mask != p.Mask {
		t.Error("Store Vectors has no per-entry forgetting")
	}
	if sv.SizeBits() == 0 {
		t.Error("vectors have storage")
	}
}

func TestMDPTAGEUsefulnessReset(t *testing.T) {
	cfg := ShortMDPTAGEConfig()
	cfg.UResetEvery = 8
	m := NewMDPTAGE(cfg)
	d, c := newHists(m)
	ld := LoadInfo{PC: 0x1000, StoreCount: 10}
	m.TrainViolation(ld, StoreInfo{StoreIndex: 8}, 1, Outcome{}, c)
	if p := m.Predict(ld, d); p.Kind != Distance {
		t.Fatal("should predict after allocation")
	}
	for i := 0; i < 10; i++ {
		m.Predict(ld, d) // drive past the reset interval
	}
	if p := m.Predict(ld, d); p.Kind != NoDep {
		t.Error("periodic usefulness reset should disable stale entries")
	}
}

func TestStoreSetsDistanceOverflowIgnored(t *testing.T) {
	n := NewNoSQ(DefaultNoSQConfig())
	d, c := newHists(n)
	ld := LoadInfo{PC: 0x1000, StoreCount: 500}
	n.TrainViolation(ld, StoreInfo{StoreIndex: 100}, 399, Outcome{}, c)
	if p := n.Predict(ld, d); p.Kind != NoDep {
		t.Error("distances beyond 7 bits must not train")
	}
}

func TestPredictorNamesAndAccessCounters(t *testing.T) {
	preds := []Predictor{
		NewStoreSets(DefaultStoreSetsConfig()), NewNoSQ(DefaultNoSQConfig()),
		NewMDPTAGE(DefaultMDPTAGEConfig()), DefaultStoreVector(), DefaultCHT(),
		NewIdeal(), NewNone(), NewAlwaysWait(), DefaultPerceptronMDP(),
		NewUnlimitedNoSQ(8), NewUnlimitedMDPTAGE(),
	}
	seen := map[string]bool{}
	for _, p := range preds {
		name := p.Name()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate name %q", name)
		}
		seen[name] = true
		d, _ := newHists(p)
		p.Predict(LoadInfo{PC: 1, StoreCount: 1}, d)
		p.StoreDispatch(StoreInfo{PC: 2})
		p.StoreCommit(StoreInfo{PC: 2})
	}
}
