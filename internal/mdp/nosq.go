package mdp

import "repro/internal/histutil"

// NoSQ implements the store-distance predictor of Sha, Martin & Roth's NoSQ
// microarchitecture (MICRO 2006): two load-indexed set-associative tables.
// One is path insensitive (indexed by load PC only); the other is path
// sensitive, indexed by the load PC hashed with a fixed 8-branch history.
// On a violation both tables allocate; on a prediction both are probed and
// a path-sensitive match wins. Each entry holds a partial tag, a store
// distance, and a confidence counter that gates the prediction.
type NoSQ struct {
	accessCounter
	noStoreHooks
	noPaths

	pi *AssocTable // path-insensitive
	ps *AssocTable // path-sensitive

	histLen   int
	foldIdxD  *histutil.Fold // decode-time index fold
	confMax   uint8
	confThres uint8
	confStep  uint8
}

// NoSQConfig sizes the predictor.
type NoSQConfig struct {
	EntriesPerTable int // total entries per table (sets × 4 ways)
	TagBits         int
	HistLen         int // fixed path-history length (the paper uses 8)
}

// DefaultNoSQConfig returns the Table II configuration: two 2K-entry 4-way
// tables (4K entries total), 22-bit tags, 8-branch history — 19KB.
func DefaultNoSQConfig() NoSQConfig {
	return NoSQConfig{EntriesPerTable: 2048, TagBits: 22, HistLen: 8}
}

// NewNoSQ builds the predictor.
func NewNoSQ(cfg NoSQConfig) *NoSQ {
	sets := cfg.EntriesPerTable / 4
	return &NoSQ{
		pi:        NewAssocTable(sets, 4, cfg.TagBits),
		ps:        NewAssocTable(sets, 4, cfg.TagBits),
		histLen:   cfg.HistLen,
		confMax:   127, // 7-bit counter per Table II
		confThres: 64,
		confStep:  16,
	}
}

// Name implements Predictor.
func (n *NoSQ) Name() string { return "nosq" }

// nosqFoldWidth is the folded path-history width.
const nosqFoldWidth = 24

// Bind implements Predictor: register the fixed-length prediction fold
// (training folds on demand from the register passed to it).
func (n *NoSQ) Bind(decode, commit *histutil.Reg) {
	n.foldIdxD = decode.NewFold(n.histLen, nosqFoldWidth)
	_ = commit
}

func (n *NoSQ) piHash(pc uint64) uint64 {
	return histutil.Mix(histutil.HashPC(pc), histutil.HashPCTag(pc))
}

func (n *NoSQ) psHash(pc uint64, folded uint64) uint64 {
	return histutil.Mix(histutil.HashPC(pc), folded^histutil.HashPCTag(pc))
}

// Predict implements Predictor: probe both tables; a confident path-
// sensitive match wins over the path-insensitive one.
func (n *NoSQ) Predict(ld LoadInfo, _ *histutil.Reg) Prediction {
	n.reads += 2
	psHash := n.psHash(ld.PC, n.foldIdxD.Value())
	if e, w := n.ps.Lookup(n.ps.SetIndex(psHash), n.ps.TagOf(psHash)); e != nil {
		n.ps.Touch(n.ps.SetIndex(psHash), w)
		if e.Conf >= n.confThres {
			return Prediction{
				Kind: Distance, Dist: int(e.Dist),
				Provider: ProviderRef{Valid: true, Table: 1, Set: n.ps.SetIndex(psHash), Way: uint8(w), Tag: e.Tag},
			}
		}
	}
	piHash := n.piHash(ld.PC)
	if e, w := n.pi.Lookup(n.pi.SetIndex(piHash), n.pi.TagOf(piHash)); e != nil {
		n.pi.Touch(n.pi.SetIndex(piHash), w)
		if e.Conf >= n.confThres {
			return Prediction{
				Kind: Distance, Dist: int(e.Dist),
				Provider: ProviderRef{Valid: true, Table: 0, Set: n.pi.SetIndex(piHash), Way: uint8(w), Tag: e.Tag},
			}
		}
	}
	return Prediction{Kind: NoDep}
}

// TrainViolation implements Predictor: allocate (or refresh) entries in both
// tables with the observed distance at full confidence.
func (n *NoSQ) TrainViolation(ld LoadInfo, st StoreInfo, dist int, _ Outcome, hist *histutil.Reg) {
	if dist < 0 || dist > 127 {
		return // beyond the 7-bit distance field
	}
	n.writes += 2
	piHash := n.piHash(ld.PC)
	n.install(n.pi, piHash, uint8(dist))
	psHash := n.psHash(ld.PC, hist.Fold(n.histLen, nosqFoldWidth))
	n.install(n.ps, psHash, uint8(dist))
}

func (n *NoSQ) install(t *AssocTable, hash uint64, dist uint8) {
	set, tag := t.SetIndex(hash), t.TagOf(hash)
	if e, w := t.Lookup(set, tag); e != nil {
		e.Dist = dist
		e.Conf = n.confMax
		t.Touch(set, w)
		return
	}
	t.Insert(set, Entry{Valid: true, Tag: tag, Dist: dist, Conf: n.confMax})
}

// TrainCommit implements Predictor: reinforce the providing entry when the
// wait was justified; halve its confidence on a false dependence so a
// handful of useless stalls silences it.
func (n *NoSQ) TrainCommit(ld LoadInfo, out Outcome, _ *histutil.Reg) {
	p := out.Pred.Provider
	if !p.Valid || !out.Waited {
		return
	}
	t := n.pi
	if p.Table == 1 {
		t = n.ps
	}
	e := t.At(p.Set, int(p.Way))
	if !e.Valid || e.Tag != p.Tag {
		return // evicted since prediction
	}
	n.writes++
	if out.TrueDep {
		if e.Conf > n.confMax-n.confStep {
			e.Conf = n.confMax
		} else {
			e.Conf += n.confStep
		}
	} else {
		e.Conf /= 2
	}
}

// SizeBits implements Predictor: per Table II each entry carries a tag, a
// 7-bit counter, a 7-bit distance and 2 LRU bits.
func (n *NoSQ) SizeBits() int {
	per := n.pi.Entries() * (n.pi.TagBits() + 7 + 7 + 2)
	return 2 * per
}
