package mdp

import "testing"

func TestPerceptronMDPLearnsCollidingLoad(t *testing.T) {
	p := DefaultPerceptronMDP()
	d, c := newHists(p)
	ld := LoadInfo{PC: 0x3000}
	if got := p.Predict(ld, d); got.Kind != NoDep {
		t.Fatal("cold perceptron should speculate")
	}
	// Repeated violations classify the load as colliding.
	for i := 0; i < 30; i++ {
		p.TrainViolation(ld, StoreInfo{}, 0, Outcome{}, c)
	}
	if got := p.Predict(ld, d); got.Kind != WaitAll {
		t.Error("violating load should be classified as colliding")
	}
	// Sustained conflict-free retirement flips it back.
	for i := 0; i < 200; i++ {
		p.TrainCommit(ld, Outcome{Pred: Prediction{Kind: WaitAll}, Waited: true, TrueDep: false}, c)
	}
	if got := p.Predict(ld, d); got.Kind != NoDep {
		t.Error("conflict-free history should reclassify the load")
	}
}

func TestPerceptronMDPSize(t *testing.T) {
	p := DefaultPerceptronMDP()
	if kb := float64(p.SizeBits()) / 8192; kb < 1 || kb > 6 {
		t.Errorf("perceptron MDP size = %.2f KB, expected a small budget", kb)
	}
}
