package mdp

import "repro/internal/histutil"

// PerceptronMDP implements the perceptron-based memory dependence predictor
// of Hasan (2021, §VII of the paper): a PC-indexed table of perceptrons over
// a global history vector recording, for each of the last n retired loads,
// whether it caused a memory order violation. A positive dot product
// classifies the load as colliding, and — like CHT — a colliding load
// conservatively waits for all older unresolved stores. The paper cites it
// as reaching almost Store Sets' speedup at very low energy; it is included
// here as the energy-constrained design point.
type PerceptronMDP struct {
	accessCounter
	noBind
	noStoreHooks
	noPaths

	weights [][]int8
	mask    uint64
	hist    []bool // true = that retired load violated
	theta   int
}

// NewPerceptronMDP builds the predictor with 2^bits perceptrons over
// histLen retired-load outcomes.
func NewPerceptronMDP(bits, histLen int) *PerceptronMDP {
	w := make([][]int8, 1<<bits)
	for i := range w {
		w[i] = make([]int8, histLen+1)
	}
	return &PerceptronMDP{
		weights: w,
		mask:    1<<bits - 1,
		hist:    make([]bool, histLen),
		theta:   int(1.93*float64(histLen) + 14),
	}
}

// DefaultPerceptronMDP returns a 256-perceptron, 16-outcome-history
// predictor (4.25KB of weights — the energy-constrained design point).
func DefaultPerceptronMDP() *PerceptronMDP { return NewPerceptronMDP(8, 16) }

// Name implements Predictor.
func (p *PerceptronMDP) Name() string { return "perceptron-mdp" }

func (p *PerceptronMDP) output(pc uint64) int {
	w := p.weights[histutil.HashPC(pc)&p.mask]
	y := int(w[0])
	for i, h := range p.hist {
		if h {
			y += int(w[i+1])
		} else {
			y -= int(w[i+1])
		}
	}
	return y
}

// Predict implements Predictor.
func (p *PerceptronMDP) Predict(ld LoadInfo, _ *histutil.Reg) Prediction {
	p.reads++
	// Strictly positive: a cold (all-zero) perceptron speculates.
	if p.output(ld.PC) > 0 {
		return Prediction{Kind: WaitAll}
	}
	return Prediction{Kind: NoDep}
}

func (p *PerceptronMDP) train(pc uint64, collided bool) {
	y := p.output(pc)
	pred := y >= 0
	if pred != collided || abs(y) <= p.theta {
		w := p.weights[histutil.HashPC(pc)&p.mask]
		w[0] = bump(w[0], collided)
		for i, h := range p.hist {
			w[i+1] = bump(w[i+1], collided == h)
		}
		p.writes++
	}
	copy(p.hist, p.hist[1:])
	p.hist[len(p.hist)-1] = collided
}

// TrainViolation implements Predictor: the retiring load collided.
func (p *PerceptronMDP) TrainViolation(ld LoadInfo, _ StoreInfo, _ int, _ Outcome, _ *histutil.Reg) {
	p.train(ld.PC, true)
}

// TrainCommit implements Predictor: a load retired without violating. A
// justified wait counts as a collision (it would have violated had it
// speculated); anything else trains toward speculation.
func (p *PerceptronMDP) TrainCommit(ld LoadInfo, out Outcome, _ *histutil.Reg) {
	p.train(ld.PC, out.Waited && out.TrueDep)
}

// SizeBits implements Predictor: 8-bit weights.
func (p *PerceptronMDP) SizeBits() int {
	return len(p.weights) * len(p.weights[0]) * 8
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func bump(w int8, up bool) int8 {
	if up {
		if w < 127 {
			return w + 1
		}
		return w
	}
	if w > -127 {
		return w - 1
	}
	return w
}
