package mdp

import "repro/internal/histutil"

// StoreSets implements Chrysos & Emer's Store Sets predictor (ISCA 1998),
// the mainstream baseline. Two tagless tables: the Store Set Identification
// Table (SSIT), indexed by hashed load/store PC, holds a valid bit and an
// SSID; the Last Fetched Store Table (LFST), indexed by SSID, holds the id
// of the youngest in-flight store of the set. Loads depend on the last
// fetched store of their set; stores of a set serialise behind each other.
// Sets merge on violations between instructions that already belong to
// different sets, and the tables are cleared periodically to undo the
// convergence this merging causes.
type StoreSets struct {
	accessCounter
	noBind
	noPaths

	ssit []ssitEntry
	lfst []lfstEntry

	ssidBits   int
	nextSSID   uint32
	resetEvery uint64 // predictions between table clears (0 = never)
	accesses   uint64
}

type ssitEntry struct {
	valid bool
	ssid  uint32
}

type lfstEntry struct {
	valid      bool
	seq        uint64
	storeIndex uint64
}

// StoreSetsConfig sizes the predictor.
type StoreSetsConfig struct {
	SSITEntries int // power of two
	LFSTEntries int // power of two; also bounds the SSID space
	ResetEvery  uint64
}

// DefaultStoreSetsConfig returns the Table II configuration: 8K-entry SSIT
// with 12-bit SSIDs, 4K-entry LFST — 18.5KB.
func DefaultStoreSetsConfig() StoreSetsConfig {
	return StoreSetsConfig{SSITEntries: 8192, LFSTEntries: 4096, ResetEvery: 262144}
}

// NewStoreSets builds the predictor.
func NewStoreSets(cfg StoreSetsConfig) *StoreSets {
	if !histutil.Pow2(cfg.SSITEntries) || !histutil.Pow2(cfg.LFSTEntries) {
		panic("mdp: StoreSets table sizes must be powers of two")
	}
	ssidBits := 0
	for 1<<ssidBits < cfg.LFSTEntries {
		ssidBits++
	}
	return &StoreSets{
		ssit:       make([]ssitEntry, cfg.SSITEntries),
		lfst:       make([]lfstEntry, cfg.LFSTEntries),
		ssidBits:   ssidBits,
		resetEvery: cfg.ResetEvery,
	}
}

// Name implements Predictor.
func (s *StoreSets) Name() string { return "storesets" }

func (s *StoreSets) ssitIndex(pc uint64) uint64 {
	return histutil.HashPC(pc) & uint64(len(s.ssit)-1)
}

func (s *StoreSets) maybeReset() {
	s.accesses++
	if s.resetEvery != 0 && s.accesses%s.resetEvery == 0 {
		for i := range s.ssit {
			s.ssit[i] = ssitEntry{}
		}
		for i := range s.lfst {
			s.lfst[i] = lfstEntry{}
		}
	}
}

// Predict implements Predictor: a load with a valid SSID depends on the last
// fetched store of its set, if one is in flight.
func (s *StoreSets) Predict(ld LoadInfo, _ *histutil.Reg) Prediction {
	s.maybeReset()
	s.reads++
	e := s.ssit[s.ssitIndex(ld.PC)]
	if !e.valid {
		return Prediction{Kind: NoDep}
	}
	s.reads++
	l := s.lfst[e.ssid]
	if !l.valid {
		return Prediction{Kind: NoDep}
	}
	return Prediction{Kind: StoreSeq, Seq: l.seq}
}

// StoreDispatch implements Predictor: a store of a set serialises behind the
// previous last-fetched store and becomes the new last-fetched store.
func (s *StoreSets) StoreDispatch(st StoreInfo) uint64 {
	s.maybeReset()
	s.reads++
	e := s.ssit[s.ssitIndex(st.PC)]
	if !e.valid {
		return 0
	}
	s.reads++
	prev := s.lfst[e.ssid]
	s.writes++
	s.lfst[e.ssid] = lfstEntry{valid: true, seq: st.Seq, storeIndex: st.StoreIndex}
	if prev.valid {
		return prev.seq
	}
	return 0
}

// StoreCommit implements Predictor: a committing store that is still the
// last fetched store of its set invalidates the LFST entry, so loads do not
// wait for already-performed stores.
func (s *StoreSets) StoreCommit(st StoreInfo) {
	e := s.ssit[s.ssitIndex(st.PC)]
	if !e.valid {
		return
	}
	if l := &s.lfst[e.ssid]; l.valid && l.seq == st.Seq {
		s.writes++
		l.valid = false
	}
}

// TrainViolation implements Predictor: assign or merge store sets, per the
// paper's merging rule (both instructions end up in the set with the
// smaller SSID).
func (s *StoreSets) TrainViolation(ld LoadInfo, st StoreInfo, _ int, _ Outcome, _ *histutil.Reg) {
	li, si := s.ssitIndex(ld.PC), s.ssitIndex(st.PC)
	le, se := s.ssit[li], s.ssit[si]
	s.reads += 2
	var ssid uint32
	switch {
	case !le.valid && !se.valid:
		ssid = s.nextSSID & (1<<s.ssidBits - 1)
		s.nextSSID++
	case le.valid && !se.valid:
		ssid = le.ssid
	case !le.valid && se.valid:
		ssid = se.ssid
	default:
		ssid = le.ssid
		if se.ssid < ssid {
			ssid = se.ssid
		}
	}
	s.ssit[li] = ssitEntry{valid: true, ssid: ssid}
	s.ssit[si] = ssitEntry{valid: true, ssid: ssid}
	s.writes += 2
}

// TrainCommit implements Predictor. Store Sets has no confidence mechanism;
// stale pairings age out through the periodic reset instead.
func (s *StoreSets) TrainCommit(LoadInfo, Outcome, *histutil.Reg) {}

// SizeBits implements Predictor: SSIT entries ×(valid+SSID) + LFST entries
// ×(valid+store id).
func (s *StoreSets) SizeBits() int {
	storeIDBits := 10
	return len(s.ssit)*(1+s.ssidBits) + len(s.lfst)*(1+storeIDBits)
}
