// Package jobs is the design-space autotuner: it turns the paper's one-shot
// ablation sweeps (history lengths, table geometry, confidence bits, train
// points) into resumable asynchronous search jobs behind POST /v1/jobs.
//
// A job is a Spec — a parameter space over sim.Config knobs, a search
// strategy (grid, random, successive halving on Muops-weighted IPC), a seed
// and a budget — owned by a tenant. The Controller expands the spec into
// deterministic trial batches through experiments.Runner, so every trial
// lands in the content-addressed run cache and coalesces fleet-wide, and
// checkpoints job state atomically to disk after every rung: a killed
// daemon resumes the job without re-simulating anything the cache already
// holds. Jobs are keyed by the canonical digest of (tenant, normalized
// spec), so resubmitting the same spec under the same tenant is idempotent.
//
// See DESIGN.md §18 for the job model, checkpoint format and idempotency
// contract.
package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Search-space bounds. Hostile specs must fail with a typed SpecError before
// any allocation or simulation scales with their values (FuzzJobSpec pins
// this), so every axis is capped.
const (
	// MaxCandidates bounds the expanded candidate set of one job.
	MaxCandidates = 512
	// MaxAxis bounds the length of each space axis.
	MaxAxis = 64
	// MaxApps bounds a job's workload list.
	MaxApps = 16
	// MaxPredictorArg bounds the numeric argument of a predictor spec
	// ("phast:<sets>"), keeping validation-time construction cheap.
	MaxPredictorArg = 65536
	// MaxInstructions bounds per-trial stream length at full fidelity.
	MaxInstructions = 50_000_000
	// MaxRungs bounds a halving schedule's depth.
	MaxRungs = 8
)

// SpecError is the typed rejection for a malformed or hostile job spec. The
// serving layer maps it to HTTP 400 bad_request; anything else escaping
// spec validation is a bug (the fuzz target enforces this).
type SpecError struct {
	Msg string
}

func (e *SpecError) Error() string { return "jobs: bad spec: " + e.Msg }

func specErrf(format string, args ...any) error {
	return &SpecError{Msg: fmt.Sprintf(format, args...)}
}

// Space is the parameter space a job searches: explicit predictor specs
// plus expansion axes over the PHAST knobs the paper ablates, crossed with
// the training-point knob. Candidates enumerate deterministically:
// predictors, then phast_sets (table geometry), then phast_tables (history
// lengths), then phast_conf (confidence ceiling), each crossed with every
// train_at_detect value in order; duplicates keep their first position.
type Space struct {
	// Predictors are explicit sim predictor specs ("phast", "storesets",
	// "nosq", "phast:256", ...).
	Predictors []string `json:"predictors,omitempty"`
	// PhastSets expands to "phast:<sets>" — the table-geometry axis.
	PhastSets []int `json:"phast_sets,omitempty"`
	// PhastTables expands to "phast-tables:<n>" — the history-length axis
	// (first n of the 8 history lengths).
	PhastTables []int `json:"phast_tables,omitempty"`
	// PhastConf expands to "phast-conf:<c>" — the confidence-ceiling axis.
	PhastConf []int `json:"phast_conf,omitempty"`
	// TrainAtDetect crosses every predictor with these training-point
	// values (the §IV-A1 update-point ablation). Empty means {false}.
	TrainAtDetect []bool `json:"train_at_detect,omitempty"`
}

// Budget bounds a job's footprint.
type Budget struct {
	// MaxConfigs caps how many candidates enter the search (grid truncates
	// in candidate order, random samples). 0 = all.
	MaxConfigs int `json:"max_configs,omitempty"`
	// WallClockMS stops the job between rungs once exceeded; the job then
	// finishes as done with budget_exhausted set and the best candidate so
	// far as winner. 0 = no wall-clock bound.
	WallClockMS int64 `json:"wall_clock_ms,omitempty"`
}

// Halving tunes the successive-halving schedule (strategy "halving").
type Halving struct {
	// Eta is the promotion factor: each rung keeps ceil(count/eta)
	// candidates for the next. Default 2.
	Eta int `json:"eta,omitempty"`
	// Rungs is the schedule depth; the final rung runs at the spec's full
	// instruction count, each earlier rung at 1/eta of the next (floored at
	// MinInstructions). Default 3.
	Rungs int `json:"rungs,omitempty"`
	// MinInstructions floors the cheapest rung's stream length. Default 2000.
	MinInstructions int `json:"min_instructions,omitempty"`
}

// Spec describes one autotuner job. The zero values of defaultable fields
// are filled by Normalized before the spec is digested, so two specs
// describing the same search hash identically.
type Spec struct {
	Space    Space  `json:"space"`
	Strategy string `json:"strategy,omitempty"` // grid | random | halving (default grid)
	// Seed drives the search's stochastic parts (the random strategy's
	// sample). It never reaches trial configs: trials use each app's
	// default stream, so jobs with different search seeds share cached runs.
	Seed    int64   `json:"seed,omitempty"`
	Budget  Budget  `json:"budget,omitempty"`
	Halving Halving `json:"halving,omitempty"`
	// Apps is the workload list every trial runs over (default: the
	// controller's suite). Scores weight apps by micro-op count.
	Apps []string `json:"apps,omitempty"`
	// Machine is the machine configuration (default alderlake).
	Machine string `json:"machine,omitempty"`
	// Instructions is the full-fidelity per-run stream length (default: the
	// controller's).
	Instructions int `json:"instructions,omitempty"`
}

// Candidate is one point of the expanded space.
type Candidate struct {
	Predictor     string `json:"predictor"`
	TrainAtDetect bool   `json:"train_at_detect,omitempty"`
}

// ParseSpecJSON strictly decodes and validates a job spec. Every rejection
// — malformed JSON, unknown fields, out-of-range knobs — is a typed
// *SpecError; a parsed spec is structurally safe to normalize and plan
// (bounded candidate count, bounded instructions) but not yet defaulted.
func ParseSpecJSON(data []byte) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, specErrf("%v", err)
	}
	// Trailing garbage after the spec object is a malformed request, not an
	// ignorable suffix.
	if dec.More() {
		return Spec{}, specErrf("trailing data after spec object")
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Validate checks every knob's bounds, tolerating zero values (Normalized
// fills them). All rejections are typed *SpecError.
func (s Spec) Validate() error {
	switch s.Strategy {
	case "", "grid", "random", "halving":
	default:
		return specErrf("unknown strategy %q (want grid, random or halving)", s.Strategy)
	}
	if s.Instructions != 0 && (s.Instructions < 1000 || s.Instructions > MaxInstructions) {
		return specErrf("instructions %d out of range [1000, %d]", s.Instructions, MaxInstructions)
	}
	if s.Machine != "" {
		if _, err := config.ByName(s.Machine); err != nil {
			return specErrf("%v", err)
		}
	}
	if len(s.Apps) > MaxApps {
		return specErrf("%d apps (max %d)", len(s.Apps), MaxApps)
	}
	for _, app := range s.Apps {
		if app == "" {
			return specErrf("empty app name")
		}
		if digest, ok, err := sim.TraceDigest(app); ok || err != nil {
			if err != nil {
				return specErrf("app %q: %v", app, err)
			}
			_ = digest // a well-formed trace digest; existence is checked at run time
			continue
		}
		if _, err := workload.ByName(app); err != nil {
			return specErrf("%v", err)
		}
	}
	if err := s.Space.validate(); err != nil {
		return err
	}
	n := len(s.Candidates())
	if n == 0 {
		return specErrf("space selects no candidates")
	}
	if n > MaxCandidates {
		return specErrf("space expands to %d candidates (max %d)", n, MaxCandidates)
	}
	if s.Budget.MaxConfigs < 0 {
		return specErrf("negative budget.max_configs")
	}
	if s.Budget.WallClockMS < 0 {
		return specErrf("negative budget.wall_clock_ms")
	}
	h := s.Halving
	if h.Eta != 0 && (h.Eta < 2 || h.Eta > 8) {
		return specErrf("halving.eta %d out of range [2, 8]", h.Eta)
	}
	if h.Rungs != 0 && (h.Rungs < 1 || h.Rungs > MaxRungs) {
		return specErrf("halving.rungs %d out of range [1, %d]", h.Rungs, MaxRungs)
	}
	if h.MinInstructions != 0 && (h.MinInstructions < 500 || h.MinInstructions > MaxInstructions) {
		return specErrf("halving.min_instructions %d out of range [500, %d]", h.MinInstructions, MaxInstructions)
	}
	return nil
}

func (sp Space) validate() error {
	for _, axis := range [][]int{sp.PhastSets, sp.PhastTables, sp.PhastConf} {
		if len(axis) > MaxAxis {
			return specErrf("space axis of %d values (max %d)", len(axis), MaxAxis)
		}
	}
	if len(sp.Predictors) > MaxAxis {
		return specErrf("%d explicit predictors (max %d)", len(sp.Predictors), MaxAxis)
	}
	for _, v := range sp.PhastSets {
		if v < 16 || v > MaxPredictorArg {
			return specErrf("phast_sets value %d out of range [16, %d]", v, MaxPredictorArg)
		}
	}
	for _, v := range sp.PhastTables {
		if v < 1 || v > 8 {
			return specErrf("phast_tables value %d out of range [1, 8]", v)
		}
	}
	for _, v := range sp.PhastConf {
		if v < 1 || v > 255 {
			return specErrf("phast_conf value %d out of range [1, 255]", v)
		}
	}
	for _, spec := range sp.Predictors {
		if err := validatePredictorSpec(spec); err != nil {
			return err
		}
	}
	if len(sp.TrainAtDetect) > 2 {
		return specErrf("train_at_detect lists %d values (max 2)", len(sp.TrainAtDetect))
	}
	if len(sp.TrainAtDetect) == 2 && sp.TrainAtDetect[0] == sp.TrainAtDetect[1] {
		return specErrf("duplicate train_at_detect value")
	}
	return nil
}

// validatePredictorSpec accepts exactly what sim.NewPredictor accepts, after
// capping the numeric argument so validation-time construction stays cheap
// on hostile input (a "phast:999999999" must be a 400, not an allocation).
func validatePredictorSpec(spec string) error {
	if spec == "" {
		return specErrf("empty predictor spec")
	}
	if _, arg, ok := strings.Cut(spec, ":"); ok {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return specErrf("predictor spec %q: non-integer argument", spec)
		}
		if v < 0 || v > MaxPredictorArg {
			return specErrf("predictor spec %q: argument out of range [0, %d]", spec, MaxPredictorArg)
		}
	}
	if _, err := sim.NewPredictor(spec); err != nil {
		return specErrf("%v", err)
	}
	return nil
}

// Normalized fills every defaultable field with the value the controller
// would use, so equal searches digest equal. defApps and defInsts are the
// controller's suite and full-fidelity instruction count.
func (s Spec) Normalized(defApps []string, defInsts int) Spec {
	if s.Strategy == "" {
		s.Strategy = "grid"
	}
	if len(s.Apps) == 0 {
		s.Apps = append([]string(nil), defApps...)
	}
	if s.Machine == "" {
		s.Machine = "alderlake"
	}
	if s.Instructions == 0 {
		s.Instructions = defInsts
	}
	if s.Strategy == "halving" {
		if s.Halving.Eta == 0 {
			s.Halving.Eta = 2
		}
		if s.Halving.Rungs == 0 {
			s.Halving.Rungs = 3
		}
		if s.Halving.MinInstructions == 0 {
			s.Halving.MinInstructions = 2000
		}
	} else {
		// Halving knobs are meaningless under grid/random; zero them so
		// they cannot split digests of identical searches.
		s.Halving = Halving{}
	}
	if len(s.Space.TrainAtDetect) == 0 {
		s.Space.TrainAtDetect = []bool{false}
	}
	return s
}

// Candidates expands the space in canonical order: explicit predictors,
// then the phast_sets, phast_tables and phast_conf axes, each crossed with
// every train_at_detect value in listed order. Duplicate candidates keep
// their first position, so the candidate index — the deterministic
// tie-breaker everywhere in the search — is stable.
func (s Spec) Candidates() []Candidate {
	tads := s.Space.TrainAtDetect
	if len(tads) == 0 {
		tads = []bool{false}
	}
	preds := make([]string, 0,
		len(s.Space.Predictors)+len(s.Space.PhastSets)+len(s.Space.PhastTables)+len(s.Space.PhastConf))
	preds = append(preds, s.Space.Predictors...)
	for _, v := range s.Space.PhastSets {
		preds = append(preds, "phast:"+strconv.Itoa(v))
	}
	for _, v := range s.Space.PhastTables {
		preds = append(preds, "phast-tables:"+strconv.Itoa(v))
	}
	for _, v := range s.Space.PhastConf {
		preds = append(preds, "phast-conf:"+strconv.Itoa(v))
	}
	seen := map[Candidate]bool{}
	out := make([]Candidate, 0, len(preds)*len(tads))
	for _, p := range preds {
		for _, tad := range tads {
			c := Candidate{Predictor: p, TrainAtDetect: tad}
			if seen[c] {
				continue
			}
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Config builds the sim config of one trial: candidate cand over app at the
// given stream length. The search seed deliberately does not propagate —
// trial runs must share cache entries across jobs.
func (s Spec) Config(cand Candidate, app string, insts int) sim.Config {
	return sim.Config{
		App:           app,
		Machine:       s.Machine,
		Predictor:     cand.Predictor,
		Instructions:  insts,
		TrainAtDetect: cand.TrainAtDetect,
	}
}

// digestPrefix versions the job-identity preimage; bump it if the digested
// content changes meaning, so stale checkpoint directories cannot alias new
// jobs.
const digestPrefix = "phast-job/v1\n"

// DigestSpec returns the canonical job identity: sha256 over the versioned
// preimage of the owning tenant and the normalized spec's canonical JSON
// (Go's json.Marshal field order is declaration order, so the encoding is
// deterministic). Same tenant + same normalized spec ⇒ same job ID — the
// idempotency key of POST /v1/jobs.
func DigestSpec(tenant string, normalized Spec) string {
	blob, err := json.Marshal(normalized)
	if err != nil {
		// A Spec holds only marshalable fields; this cannot happen.
		panic("jobs: spec marshal: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(digestPrefix))
	h.Write([]byte(tenant))
	h.Write([]byte{'\n'})
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil))
}
