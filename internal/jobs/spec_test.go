package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCandidatesOrder pins the canonical expansion order the whole search
// keys on: explicit predictors, then the phast_sets/phast_tables/phast_conf
// axes, each crossed with every train_at_detect value, duplicates keeping
// their first position.
func TestCandidatesOrder(t *testing.T) {
	s := Spec{Space: Space{
		Predictors:    []string{"storesets", "phast:64"},
		PhastSets:     []int{64, 256},
		PhastTables:   []int{2},
		PhastConf:     []int{15},
		TrainAtDetect: []bool{false, true},
	}}
	want := []Candidate{
		{Predictor: "storesets"}, {Predictor: "storesets", TrainAtDetect: true},
		{Predictor: "phast:64"}, {Predictor: "phast:64", TrainAtDetect: true},
		// "phast:64" from phast_sets is a duplicate of the explicit one.
		{Predictor: "phast:256"}, {Predictor: "phast:256", TrainAtDetect: true},
		{Predictor: "phast-tables:2"}, {Predictor: "phast-tables:2", TrainAtDetect: true},
		{Predictor: "phast-conf:15"}, {Predictor: "phast-conf:15", TrainAtDetect: true},
	}
	if got := s.Candidates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Candidates() =\n%v\nwant\n%v", got, want)
	}
}

// TestDigestSpec pins idempotency-by-digest: same tenant + same normalized
// spec hash identically; tenant, knobs and search seed all split the digest.
func TestDigestSpec(t *testing.T) {
	apps := []string{"511.povray"}
	base := Spec{Space: Space{PhastTables: []int{1, 2}}, Strategy: "halving"}
	norm := base.Normalized(apps, 10_000)
	if a, b := DigestSpec("acme", norm), DigestSpec("acme", norm); a != b {
		t.Fatalf("digest not stable: %s vs %s", a, b)
	}
	if DigestSpec("acme", norm) == DigestSpec("zeta", norm) {
		t.Fatalf("different tenants share a digest")
	}
	mut := base
	mut.Seed = 42
	if DigestSpec("acme", mut.Normalized(apps, 10_000)) == DigestSpec("acme", norm) {
		t.Fatalf("different seeds share a digest")
	}
	// A spec that spells out the defaults digests like one that omits them.
	spelled := base
	spelled.Machine = "alderlake"
	spelled.Instructions = 10_000
	spelled.Apps = apps
	if DigestSpec("acme", spelled.Normalized(apps, 10_000)) != DigestSpec("acme", norm) {
		t.Fatalf("spelled-out defaults digest differently from omitted ones")
	}
}

// TestNormalizedDefaults pins the defaulting rules, in particular that grid
// zeroes the halving knobs (they must not split digests of identical grids).
func TestNormalizedDefaults(t *testing.T) {
	apps := []string{"511.povray", "541.leela"}
	n := Spec{Space: Space{Predictors: []string{"phast"}}, Strategy: "halving"}.Normalized(apps, 20_000)
	if n.Halving != (Halving{Eta: 2, Rungs: 3, MinInstructions: 2000}) {
		t.Fatalf("halving defaults = %+v", n.Halving)
	}
	if n.Machine != "alderlake" || n.Instructions != 20_000 || !reflect.DeepEqual(n.Apps, apps) {
		t.Fatalf("defaults = %+v", n)
	}
	if !reflect.DeepEqual(n.Space.TrainAtDetect, []bool{false}) {
		t.Fatalf("train_at_detect default = %v", n.Space.TrainAtDetect)
	}
	g := Spec{Space: Space{Predictors: []string{"phast"}}, Halving: Halving{Eta: 4}}.Normalized(apps, 20_000)
	if g.Strategy != "grid" || g.Halving != (Halving{}) {
		t.Fatalf("grid normalization kept halving knobs: %+v", g)
	}
}

// TestParseSpecJSONRejects pins the typed-400 contract on hostile input:
// every rejection is a *SpecError naming the offending knob.
func TestParseSpecJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"malformed json", `{"space":`, "unexpected EOF"},
		{"unknown field", `{"space":{"predictors":["phast"]},"bogus":1}`, "bogus"},
		{"trailing data", `{"space":{"predictors":["phast"]}}{"x":1}`, "trailing data"},
		{"bad strategy", `{"space":{"predictors":["phast"]},"strategy":"annealing"}`, "unknown strategy"},
		{"empty space", `{"space":{}}`, "no candidates"},
		{"bad predictor", `{"space":{"predictors":["quantum"]}}`, "quantum"},
		{"huge predictor arg", `{"space":{"predictors":["phast:999999999"]}}`, "out of range"},
		{"non-integer arg", `{"space":{"predictors":["phast:many"]}}`, "non-integer"},
		{"bad sets", `{"space":{"phast_sets":[4]}}`, "phast_sets"},
		{"bad tables", `{"space":{"phast_tables":[9]}}`, "phast_tables"},
		{"bad conf", `{"space":{"phast_conf":[0]}}`, "phast_conf"},
		{"dup tad", `{"space":{"predictors":["phast"],"train_at_detect":[true,true]}}`, "duplicate"},
		{"bad machine", `{"space":{"predictors":["phast"]},"machine":"cray"}`, "cray"},
		{"bad app", `{"space":{"predictors":["phast"]},"apps":["611.quake"]}`, "611.quake"},
		{"empty app", `{"space":{"predictors":["phast"]},"apps":[""]}`, "empty app"},
		{"bad trace digest", `{"space":{"predictors":["phast"]},"apps":["trace:zz"]}`, "trace"},
		{"tiny instructions", `{"space":{"predictors":["phast"]},"instructions":10}`, "instructions"},
		{"negative budget", `{"space":{"predictors":["phast"]},"budget":{"max_configs":-1}}`, "max_configs"},
		{"negative wall", `{"space":{"predictors":["phast"]},"budget":{"wall_clock_ms":-5}}`, "wall_clock_ms"},
		{"bad eta", `{"space":{"predictors":["phast"]},"halving":{"eta":99}}`, "eta"},
		{"bad rungs", `{"space":{"predictors":["phast"]},"halving":{"rungs":40}}`, "rungs"},
		{"bad min insts", `{"space":{"predictors":["phast"]},"halving":{"min_instructions":1}}`, "min_instructions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpecJSON([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted %s", tc.body)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *SpecError: %v", err, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestExampleSpecsParse keeps the ready-made ablation specs under
// examples/jobspecs/ submittable — EXPERIMENTS.md points users at them.
func TestExampleSpecsParse(t *testing.T) {
	files, err := filepath.Glob("../../examples/jobspecs/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example specs found: %v", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseSpecJSON(data); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

// TestParseSpecJSONAccepts sanity-checks the happy path, including a
// well-formed trace-digest app (existence is a run-time question).
func TestParseSpecJSONAccepts(t *testing.T) {
	body := `{
		"space": {"phast_tables": [1, 2, 4, 8], "train_at_detect": [false, true]},
		"strategy": "halving", "seed": 3,
		"budget": {"max_configs": 6},
		"halving": {"eta": 2, "rungs": 2},
		"apps": ["511.povray", "trace:` + strings.Repeat("ab", 32) + `"],
		"instructions": 4000
	}`
	spec, err := ParseSpecJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(spec.Candidates()); got != 8 {
		t.Fatalf("candidates = %d, want 8", got)
	}
}
