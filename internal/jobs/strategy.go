package jobs

import (
	"math/rand"
	"sort"
)

// rungPlan is one rung of a search schedule: how many candidates it
// evaluates and at what stream length. Grid and random searches are a
// single full-fidelity rung; successive halving stacks rungs of increasing
// fidelity and shrinking population.
type rungPlan struct {
	// Count is the planned candidate population of this rung (failures can
	// shrink the actual frontier below it).
	Count int `json:"count"`
	// Instructions is the per-run stream length at this rung.
	Instructions int `json:"instructions"`
}

// planRungs lays out the deterministic schedule for n selected candidates
// under a normalized spec. For halving with R rungs and promotion factor
// eta: the final rung runs at the spec's full instruction count, each
// earlier rung at 1/eta of the next (floored at MinInstructions), and rung
// populations shrink by ceil(count/eta) per step. The plan depends only on
// (n, spec) — never on scores or timing — so a resumed job recomputes the
// identical schedule.
func planRungs(spec Spec, n int) []rungPlan {
	if n <= 0 {
		return nil
	}
	if spec.Strategy != "halving" {
		return []rungPlan{{Count: n, Instructions: spec.Instructions}}
	}
	eta, rungs, minInsts := spec.Halving.Eta, spec.Halving.Rungs, spec.Halving.MinInstructions
	plan := make([]rungPlan, rungs)
	count := n
	for i := 0; i < rungs; i++ {
		plan[i].Count = count
		count = ceilDiv(count, eta)
	}
	insts := spec.Instructions
	for i := rungs - 1; i >= 0; i-- {
		plan[i].Instructions = insts
		insts /= eta
		if insts < minInsts {
			insts = minInsts
		}
	}
	return plan
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// planCost is the schedule's total budget in simulated instructions across
// apps — what the job will cost on a cold cache. Visible in the job status
// (planned_instructions) so budget accounting is checkable before a job
// runs, and pinned by the rung-math unit tests.
func planCost(plan []rungPlan, apps int) int64 {
	var total int64
	for _, r := range plan {
		total += int64(r.Count) * int64(r.Instructions) * int64(apps)
	}
	return total
}

// selectInitial picks the candidate indices entering rung 0, in trial
// order. Grid (and halving) truncate the canonical candidate order at the
// budget; random draws a seeded Fisher-Yates sample — the only place the
// spec seed is consumed, so everything downstream of selection is
// seed-independent.
func selectInitial(spec Spec, candidates int) []int {
	n := candidates
	if max := spec.Budget.MaxConfigs; max > 0 && max < n {
		n = max
	}
	idx := make([]int, candidates)
	for i := range idx {
		idx[i] = i
	}
	if spec.Strategy == "random" {
		rng := rand.New(rand.NewSource(spec.Seed))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	return idx[:n]
}

// trialScore is one rung entry as seen by promotion: candidate index,
// Muops-weighted IPC, and whether any of the trial's runs failed.
type trialScore struct {
	cand   int
	score  float64
	failed bool
}

// promote returns the candidate indices surviving into the next rung:
// the top keep successful trials by score, ties broken toward the lower
// candidate index (the canonical enumeration order), failures never
// promoted even when that leaves fewer than keep survivors. The result is
// ascending by candidate index, so the next rung's trial order is
// deterministic.
func promote(scored []trialScore, keep int) []int {
	ok := make([]trialScore, 0, len(scored))
	for _, t := range scored {
		if !t.failed {
			ok = append(ok, t)
		}
	}
	sort.SliceStable(ok, func(i, j int) bool {
		if ok[i].score != ok[j].score {
			return ok[i].score > ok[j].score
		}
		return ok[i].cand < ok[j].cand
	})
	if keep > len(ok) {
		keep = len(ok)
	}
	out := make([]int, keep)
	for i := 0; i < keep; i++ {
		out[i] = ok[i].cand
	}
	sort.Ints(out)
	return out
}
