package jobs

import (
	"errors"
	"testing"
)

// FuzzJobSpec is the POST /v1/jobs hardening target: arbitrary bytes
// through the strict parser must either produce a typed *SpecError (the
// serving layer's 400) or a spec that is safe to normalize, expand and plan
// without panicking and within the documented bounds. Anything else —
// an untyped error, a panic, an unbounded candidate set — is a bug.
func FuzzJobSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"space":{}}`,
		`{"space":{"predictors":["phast"]}}`,
		`{"space":{"phast_tables":[1,2,4,8],"train_at_detect":[false,true]},"strategy":"halving","halving":{"eta":2,"rungs":3,"min_instructions":2000},"instructions":8000,"apps":["511.povray"],"seed":7}`,
		`{"space":{"phast_sets":[64,256,1024],"phast_conf":[3,7,15]},"strategy":"random","seed":42,"budget":{"max_configs":4,"wall_clock_ms":60000}}`,
		`{"space":{"predictors":["storesets","nosq","phast:256"]},"strategy":"grid","machine":"alderlake"}`,
		`{"space":{"predictors":["phast:-1"]}}`,
		`{"space":{"predictors":["phast:999999999999999999999"]}}`,
		`{"space":{"phast_tables":[0]}}`,
		`{"space":{"predictors":["phast"]},"apps":["trace:feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"]}`,
		`{"space":{"predictors":["phast"]},"bogus":true}`,
		`{"space":{"predictors":["phast"]}}{"trailing":1}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"space":{"predictors":[`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpecJSON(data)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("untyped rejection %T: %v", err, err)
			}
			return
		}
		// An accepted spec must be safe end-to-end: normalize, expand,
		// select, plan, digest — all bounded, none panicking.
		norm := spec.Normalized([]string{"511.povray"}, 10_000)
		cands := norm.Candidates()
		if len(cands) == 0 || len(cands) > MaxCandidates {
			t.Fatalf("accepted spec expands to %d candidates", len(cands))
		}
		selected := selectInitial(norm, len(cands))
		if len(selected) == 0 || len(selected) > len(cands) {
			t.Fatalf("selection of %d from %d candidates", len(selected), len(cands))
		}
		plan := planRungs(norm, len(selected))
		if len(plan) == 0 {
			t.Fatal("empty schedule for an accepted spec")
		}
		for _, r := range plan {
			if r.Count <= 0 || r.Instructions <= 0 || r.Instructions > MaxInstructions {
				t.Fatalf("degenerate rung %+v", r)
			}
		}
		if planCost(plan, len(norm.Apps)) <= 0 {
			t.Fatalf("non-positive planned cost for %+v", plan)
		}
		if DigestSpec("fuzz", norm) != DigestSpec("fuzz", norm) {
			t.Fatal("digest not stable")
		}
	})
}
