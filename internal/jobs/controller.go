package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Job states. A checkpoint persisted in StateRunning marks work in flight
// when the process died; ResumeAll picks it up on the next boot.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Autotuner counters, published to the shared metrics registry (so job
// progress streams over the daemon's /metrics endpoint next to the cache
// and scheduler counters).
const (
	CounterSubmitted     = "jobs.submitted"
	CounterResumed       = "jobs.resumed"
	CounterCompleted     = "jobs.completed"
	CounterFailed        = "jobs.failed"
	CounterCancelled     = "jobs.cancelled"
	CounterTrials        = "jobs.trials"
	CounterTrialFailures = "jobs.trial_failures"
)

// ErrClosed rejects submissions after Close.
var ErrClosed = errors.New("jobs: controller closed")

// ErrUnknownJob marks a job ID this controller has never seen (HTTP 404).
var ErrUnknownJob = errors.New("jobs: unknown job")

// TenantBusyError is the typed refusal when a tenant already has its cap of
// concurrently active jobs — surfaced instead of silently queueing the new
// job behind them, so the client sees the quota explicitly (HTTP 429
// quota_exceeded) and can retry after one of its jobs finishes.
type TenantBusyError struct {
	Tenant string
	Active int
	Cap    int
}

func (e *TenantBusyError) Error() string {
	return fmt.Sprintf("jobs: tenant %q already has %d active job(s) (cap %d)",
		e.Tenant, e.Active, e.Cap)
}

// Backend executes one rung's trial batch; *experiments.Runner is the
// production implementation (configure it KeepGoing so one bad candidate
// poisons its own trial, not the rung). Trials land in the runner's
// content-addressed cache, which is what makes resumption free.
type Backend interface {
	RunConfigsDetailedContext(ctx context.Context, cfgs []sim.Config) []experiments.Result
}

// Options tune a Controller.
type Options struct {
	// Dir is the checkpoint directory (one JSON file per job, named by job
	// ID, written atomically). Required.
	Dir string
	// Backend runs trial batches. Required.
	Backend Backend
	// Metrics receives the jobs.* counters (default: a private registry).
	Metrics *stats.Metrics
	// Context is the base context of every job; cancelling it stops them
	// mid-rung with their last checkpoint intact (default Background).
	Context context.Context
	// Apps is the default workload list for specs that omit one (default:
	// the whole suite via experiments.Options normalization is NOT applied
	// here — pass the runner's app list).
	Apps []string
	// Instructions is the default full-fidelity stream length for specs
	// that omit one (default sim.DefaultInstructions).
	Instructions int
	// TenantMaxActive caps one tenant's concurrently active (running) jobs;
	// Submit past it fails with *TenantBusyError. 0 = unlimited.
	TenantMaxActive int
	// OnTrial observes every completed rung trial row (the serving layer
	// appends them to the tenant's persistent results log). Called
	// synchronously from the job goroutine, batch order, completed rungs
	// only. Nil = no observer.
	OnTrial func(tenant string, res experiments.Result)
	// Now is the wall-clock hook for the budget check (tests pin it).
	// Default time.Now.
	Now func() time.Time
}

func (o Options) norm() Options {
	if o.Metrics == nil {
		o.Metrics = stats.NewMetrics()
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Instructions == 0 {
		o.Instructions = sim.DefaultInstructions
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Trial is one completed (candidate, rung) evaluation: the per-app run
// cache keys it resolved to and its Muops-weighted IPC score. Trials append
// in planned order — frontier order within each rung — never completion
// order, so the trial log of a spec is byte-identical across fresh,
// cache-warm and kill-resumed executions.
type Trial struct {
	Rung          int      `json:"rung"`
	Candidate     int      `json:"candidate"` // index into Spec.Candidates()
	Predictor     string   `json:"predictor"`
	TrainAtDetect bool     `json:"train_at_detect,omitempty"`
	Instructions  int      `json:"instructions"`
	Keys          []string `json:"keys"` // runcache key per app, app order
	Score         float64  `json:"score"`
	Failed        bool     `json:"failed,omitempty"`
	Error         string   `json:"error,omitempty"`
}

// Winner reports the search's best candidate at the highest fidelity it
// reached: its config template (App empty — pass it to `paperfigs -config`
// to reproduce), its score, and the same per-app stats table paperfigs
// renders, byte-for-byte.
type Winner struct {
	Candidate     int        `json:"candidate"`
	Predictor     string     `json:"predictor"`
	TrainAtDetect bool       `json:"train_at_detect,omitempty"`
	Config        sim.Config `json:"config"`
	Score         float64    `json:"score"`
	Table         string     `json:"table"`
}

// checkpoint is the persisted state of one job — everything needed to
// resume after a crash. Written atomically (temp + rename) after every
// rung, so the worst a kill -9 costs is one partially-simulated rung whose
// finished runs the cache still holds.
type checkpoint struct {
	Version         int     `json:"version"`
	ID              string  `json:"id"`
	Tenant          string  `json:"tenant"`
	Spec            Spec    `json:"spec"` // normalized
	State           string  `json:"state"`
	Selected        []int   `json:"selected"`  // candidate indices entering rung 0
	NextRung        int     `json:"next_rung"` // first rung not yet completed
	Frontier        []int   `json:"frontier"`  // candidate indices entering NextRung
	Trials          []Trial `json:"trials,omitempty"`
	ElapsedMS       int64   `json:"elapsed_ms"` // accumulated across process lives
	BudgetExhausted bool    `json:"budget_exhausted,omitempty"`
	Winner          *Winner `json:"winner,omitempty"`
	ResultDigest    string  `json:"result_digest,omitempty"`
	Error           string  `json:"error,omitempty"`
}

const checkpointVersion = 1

// Status is a job's wire view (GET /v1/jobs/{id}).
type Status struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	State    string `json:"state"`
	Strategy string `json:"strategy"`
	// SpaceSize is the full expanded candidate count; Selected how many
	// entered the search under the budget.
	SpaceSize int `json:"space_size"`
	Selected  int `json:"selected"`
	Rungs     int `json:"rungs"`
	NextRung  int `json:"next_rung"`
	// PlannedTrials/PlannedInstructions are the schedule's cost on a cold
	// cache; CompletedTrials tracks progress.
	PlannedTrials       int     `json:"planned_trials"`
	PlannedInstructions int64   `json:"planned_instructions"`
	CompletedTrials     int     `json:"completed_trials"`
	FailedTrials        int     `json:"failed_trials,omitempty"`
	ElapsedMS           int64   `json:"elapsed_ms"`
	Best                *Trial  `json:"best,omitempty"`
	Winner              *Winner `json:"winner,omitempty"`
	ResultDigest        string  `json:"result_digest,omitempty"`
	BudgetExhausted     bool    `json:"budget_exhausted,omitempty"`
	Error               string  `json:"error,omitempty"`
}

// Job is one tracked search. All checkpoint mutations happen under mu; the
// batch execution itself runs outside it.
type Job struct {
	mu     sync.Mutex
	cp     checkpoint
	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{} // closed when the current run goroutine exits
	live   bool          // a run goroutine is active
}

// Controller owns the jobs of one daemon: submission, execution,
// checkpointing, cancellation and resumption.
type Controller struct {
	opt Options

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	onTrial func(tenant string, res experiments.Result)
}

// NewController builds a controller and loads every checkpoint under
// opt.Dir. Loaded jobs are tracked but not executing; call ResumeAll to
// restart the ones that were mid-flight when the previous process died.
func NewController(opt Options) (*Controller, error) {
	opt = opt.norm()
	if opt.Dir == "" {
		return nil, errors.New("jobs: Options.Dir is required")
	}
	if opt.Backend == nil {
		return nil, errors.New("jobs: Options.Backend is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	c := &Controller{
		opt:     opt,
		jobs:    map[string]*Job{},
		onTrial: opt.OnTrial,
	}
	c.baseCtx, c.baseCancel = context.WithCancel(opt.Context)
	// Touch the headline counters so /metrics shows explicit zeros.
	for _, name := range []string{CounterSubmitted, CounterResumed, CounterCompleted,
		CounterFailed, CounterCancelled, CounterTrials} {
		opt.Metrics.Add(name, 0)
	}
	entries, err := os.ReadDir(opt.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(opt.Dir, e.Name()))
		if err != nil {
			continue
		}
		var cp checkpoint
		if err := json.Unmarshal(data, &cp); err != nil || cp.Version != checkpointVersion || cp.ID == "" {
			// A torn or foreign file; the atomic write protocol means this
			// is not one of ours — leave it alone and move on.
			continue
		}
		c.jobs[cp.ID] = &Job{cp: cp}
	}
	return c, nil
}

// SetOnTrial installs the per-trial observer (the serving layer's results-
// log hook). It exists to break the construction cycle with the server —
// call it before ResumeAll or the first Submit.
func (c *Controller) SetOnTrial(fn func(tenant string, res experiments.Result)) {
	c.onTrial = fn
}

// ResumeAll restarts every job whose checkpoint says it was mid-flight.
// The deterministic schedule re-executes from the last completed rung;
// everything already simulated is a run-cache hit, so resumption costs no
// repeat simulations.
func (c *Controller) ResumeAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	resumed := 0
	for _, j := range c.jobs {
		j.mu.Lock()
		if j.cp.State == StateRunning && !j.live {
			c.start(j)
			c.opt.Metrics.Add(CounterResumed, 1)
			resumed++
		}
		j.mu.Unlock()
	}
	return resumed
}

// start launches j's run goroutine. Both c.mu and j.mu must be held.
func (c *Controller) start(j *Job) {
	j.ctx, j.cancel = context.WithCancel(c.baseCtx)
	j.done = make(chan struct{})
	j.live = true
	c.wg.Add(1)
	go c.run(j)
}

// activeJobs counts tenant's running jobs. c.mu must be held; skip is a job
// whose mutex the caller already holds (the job being restarted — it is not
// running, or the caller would not be restarting it).
func (c *Controller) activeJobs(tenant string, skip *Job) int {
	n := 0
	for _, j := range c.jobs {
		if j == skip {
			continue
		}
		j.mu.Lock()
		if j.cp.Tenant == tenant && j.cp.State == StateRunning {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Submit validates, normalizes and digests spec under tenant, and starts
// (or joins) the job. Idempotent by construction: the same tenant
// resubmitting the same spec gets the existing job's status — done jobs
// answer immediately, running jobs attach, and cancelled or failed jobs
// restart from their last checkpoint (with the run cache making redone work
// free). A tenant at its active-job cap gets a typed *TenantBusyError.
func (c *Controller) Submit(tenant string, spec Spec) (*Status, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	norm := spec.Normalized(c.opt.Apps, c.opt.Instructions)
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	id := DigestSpec(tenant, norm)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if j, ok := c.jobs[id]; ok {
		j.mu.Lock()
		defer j.mu.Unlock()
		switch {
		case j.cp.State == StateDone:
			// Terminal success: idempotent replay.
		case j.cp.State == StateRunning && j.live:
			// Already executing: attach.
		default:
			// Cancelled, failed, or loaded-but-not-resumed: restart from the
			// checkpoint under the current tenant cap.
			if cap := c.opt.TenantMaxActive; cap > 0 {
				if n := c.activeJobs(tenant, j); n >= cap {
					return nil, &TenantBusyError{Tenant: tenant, Active: n, Cap: cap}
				}
			}
			j.cp.State = StateRunning
			j.cp.Error = ""
			c.persist(&j.cp)
			c.start(j)
			c.opt.Metrics.Add(CounterResumed, 1)
		}
		return c.statusLocked(j), nil
	}

	if cap := c.opt.TenantMaxActive; cap > 0 {
		if n := c.activeJobs(tenant, nil); n >= cap {
			return nil, &TenantBusyError{Tenant: tenant, Active: n, Cap: cap}
		}
	}
	selected := selectInitial(norm, len(norm.Candidates()))
	j := &Job{cp: checkpoint{
		Version:  checkpointVersion,
		ID:       id,
		Tenant:   tenant,
		Spec:     norm,
		State:    StateRunning,
		Selected: selected,
		NextRung: 0,
		Frontier: selected,
	}}
	c.jobs[id] = j
	j.mu.Lock()
	defer j.mu.Unlock()
	c.persist(&j.cp)
	c.start(j)
	c.opt.Metrics.Add(CounterSubmitted, 1)
	return c.statusLocked(j), nil
}

// Get reports a job's status.
func (c *Controller) Get(id string) (*Status, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return c.statusLocked(j), nil
}

// List reports every job's status, newest checkpoint order unspecified;
// tenant filters when non-empty.
func (c *Controller) List(tenant string) []*Status {
	c.mu.Lock()
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	out := make([]*Status, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		if tenant == "" || j.cp.Tenant == tenant {
			out = append(out, c.statusLocked(j))
		}
		j.mu.Unlock()
	}
	return out
}

// Cancel stops a running job through its context: in-flight simulations
// receive typed sim.ErrCancelled, the partial rung is discarded, and the
// job lands terminal StateCancelled with its checkpoint intact — a
// resubmission of the same spec resumes from the last completed rung.
// Cancelling a terminal job is a no-op that reports its status.
func (c *Controller) Cancel(id string) (*Status, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cp.State == StateRunning {
		j.cp.State = StateCancelled
		c.persist(&j.cp)
		if j.cancel != nil {
			j.cancel()
		}
		c.opt.Metrics.Add(CounterCancelled, 1)
	}
	return c.statusLocked(j), nil
}

// Wait blocks until the job's current run goroutine exits (immediately for
// jobs that are not executing). Test and drain helper.
func (c *Controller) Wait(id string) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return
	}
	j.mu.Lock()
	done, live := j.done, j.live
	j.mu.Unlock()
	if live && done != nil {
		<-done
	}
}

// Close stops accepting submissions, cancels every running job's context
// and waits for their goroutines. Running jobs keep StateRunning in their
// checkpoints — they are mid-flight work a future process resumes, not
// cancellations.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.baseCancel()
	c.wg.Wait()
}

// statusLocked renders j's wire view. j.mu must be held.
func (c *Controller) statusLocked(j *Job) *Status {
	cp := &j.cp
	plan := planRungs(cp.Spec, len(cp.Selected))
	planned := 0
	for _, r := range plan {
		planned += r.Count
	}
	st := &Status{
		ID:                  cp.ID,
		Tenant:              cp.Tenant,
		State:               cp.State,
		Strategy:            cp.Spec.Strategy,
		SpaceSize:           len(cp.Spec.Candidates()),
		Selected:            len(cp.Selected),
		Rungs:               len(plan),
		NextRung:            cp.NextRung,
		PlannedTrials:       planned,
		PlannedInstructions: planCost(plan, len(cp.Spec.Apps)),
		CompletedTrials:     len(cp.Trials),
		ElapsedMS:           cp.ElapsedMS,
		Winner:              cp.Winner,
		ResultDigest:        cp.ResultDigest,
		BudgetExhausted:     cp.BudgetExhausted,
		Error:               cp.Error,
	}
	for i := range cp.Trials {
		if cp.Trials[i].Failed {
			st.FailedTrials++
		}
	}
	if best := bestTrial(cp.Trials); best != nil {
		b := *best
		st.Best = &b
	}
	return st
}

// bestTrial picks the best successful trial so far: highest rung (fidelity
// dominates — a cheap-rung score is not comparable to a full-fidelity one),
// then score, then the lower candidate index.
func bestTrial(trials []Trial) *Trial {
	var best *Trial
	for i := range trials {
		t := &trials[i]
		if t.Failed {
			continue
		}
		switch {
		case best == nil,
			t.Rung > best.Rung,
			t.Rung == best.Rung && t.Score > best.Score,
			t.Rung == best.Rung && t.Score == best.Score && t.Candidate < best.Candidate:
			best = t
		}
	}
	return best
}

// persist writes cp atomically: temp file in the checkpoint directory,
// fsync-free rename over <id>.json (the same protocol as the run cache —
// a torn write can never be observed under the final name). Best-effort:
// checkpointing must not fail the job the work already succeeded for; a
// full disk costs resumability, not results.
func (c *Controller) persist(cp *checkpoint) {
	data, err := json.MarshalIndent(cp, "", "\t")
	if err != nil {
		return
	}
	f, err := os.CreateTemp(c.opt.Dir, ".tmp-*")
	if err != nil {
		return
	}
	tmp := f.Name()
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, filepath.Join(c.opt.Dir, cp.ID+".json")); err != nil {
		os.Remove(tmp)
	}
}

// run executes j's deterministic schedule from its checkpoint: one batch
// per rung through the backend (under the owning tenant's weighted-fair
// share), trials appended in planned order, a checkpoint after every rung,
// then winner selection and rendering. Exits without touching the
// checkpoint when the context dies mid-rung — the partial rung's finished
// simulations stay in the run cache, so the resume pays nothing twice.
func (c *Controller) run(j *Job) {
	defer c.wg.Done()
	defer func() {
		j.mu.Lock()
		j.live = false
		close(j.done)
		j.mu.Unlock()
	}()

	j.mu.Lock()
	spec := j.cp.Spec
	tenant := j.cp.Tenant
	next := j.cp.NextRung
	baseElapsed := time.Duration(j.cp.ElapsedMS) * time.Millisecond
	j.mu.Unlock()

	cands := spec.Candidates()
	plan := planRungs(spec, lenSelected(j))
	started := c.opt.Now()
	elapsed := func() time.Duration { return baseElapsed + c.opt.Now().Sub(started) }
	ctx := experiments.WithTenant(j.ctx, tenant)

	for r := next; r < len(plan); r++ {
		j.mu.Lock()
		frontier := append([]int(nil), j.cp.Frontier...)
		j.mu.Unlock()
		if len(frontier) == 0 {
			c.fail(j, "no viable candidates: every trial of the previous rung failed")
			return
		}
		if wall := spec.Budget.WallClockMS; wall > 0 && elapsed().Milliseconds() > wall {
			if best := c.snapshotBest(j); best != nil {
				c.finish(j, spec, cands, best, true, elapsed())
			} else {
				c.fail(j, "wall-clock budget exhausted before any completed rung")
			}
			return
		}

		insts := plan[r].Instructions
		cfgs := make([]sim.Config, 0, len(frontier)*len(spec.Apps))
		for _, ci := range frontier {
			for _, app := range spec.Apps {
				cfgs = append(cfgs, spec.Config(cands[ci], app, insts))
			}
		}
		results := c.opt.Backend.RunConfigsDetailedContext(ctx, cfgs)
		if j.ctx.Err() != nil {
			// Cancelled (terminal state already persisted by Cancel) or the
			// controller is closing (checkpoint stays StateRunning for the
			// next process). Discard the partial rung either way.
			c.saveElapsed(j, elapsed())
			return
		}
		if fn := c.onTrial; fn != nil {
			for _, res := range results {
				fn(tenant, res)
			}
		}

		trials := make([]Trial, 0, len(frontier))
		scored := make([]trialScore, 0, len(frontier))
		failures := 0
		for i, ci := range frontier {
			rows := results[i*len(spec.Apps) : (i+1)*len(spec.Apps)]
			t := Trial{
				Rung:          r,
				Candidate:     ci,
				Predictor:     cands[ci].Predictor,
				TrainAtDetect: cands[ci].TrainAtDetect,
				Instructions:  insts,
				Keys:          make([]string, len(rows)),
			}
			runs := make([]*stats.Run, len(rows))
			for k, row := range rows {
				t.Keys[k] = runcache.Key(row.Config.Normalized())
				runs[k] = row.Run
				if row.Err != nil && !t.Failed {
					t.Failed = true
					t.Error = firstLine(row.Err.Error())
				}
			}
			if !t.Failed {
				t.Score = experiments.MuopsWeightedIPC(runs)
			} else {
				failures++
			}
			trials = append(trials, t)
			scored = append(scored, trialScore{cand: ci, score: t.Score, failed: t.Failed})
		}
		c.opt.Metrics.Add(CounterTrials, uint64(len(trials)))
		c.opt.Metrics.Add(CounterTrialFailures, uint64(failures))

		var nextFrontier []int
		if r+1 < len(plan) {
			nextFrontier = promote(scored, plan[r+1].Count)
		}

		j.mu.Lock()
		if j.cp.State != StateRunning {
			j.mu.Unlock()
			return
		}
		j.cp.Trials = append(j.cp.Trials, trials...)
		j.cp.NextRung = r + 1
		j.cp.Frontier = nextFrontier
		j.cp.ElapsedMS = elapsed().Milliseconds()
		c.persist(&j.cp)
		j.mu.Unlock()
	}

	best := c.snapshotBest(j)
	if best == nil {
		c.fail(j, "every candidate failed at the final rung")
		return
	}
	c.finish(j, spec, cands, best, false, elapsed())
}

func lenSelected(j *Job) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cp.Selected)
}

// snapshotBest returns a copy of the job's best successful trial, nil when
// none exists yet.
func (c *Controller) snapshotBest(j *Job) *Trial {
	j.mu.Lock()
	defer j.mu.Unlock()
	best := bestTrial(j.cp.Trials)
	if best == nil {
		return nil
	}
	b := *best
	return &b
}

// finish renders the winner — the same per-app runs the winning trial
// scored, recalled from the cache, through the same table renderer
// paperfigs uses — and lands the job StateDone with its result digest.
func (c *Controller) finish(j *Job, spec Spec, cands []Candidate, best *Trial, exhausted bool, elapsed time.Duration) {
	cand := cands[best.Candidate]
	cfgs := make([]sim.Config, len(spec.Apps))
	for i, app := range spec.Apps {
		cfgs[i] = spec.Config(cand, app, best.Instructions)
	}
	ctx := experiments.WithTenant(j.ctx, j.cp.Tenant)
	results := c.opt.Backend.RunConfigsDetailedContext(ctx, cfgs)
	if j.ctx.Err() != nil {
		c.saveElapsed(j, elapsed)
		return
	}
	runs := make([]*stats.Run, len(results))
	for i, res := range results {
		if res.Err != nil {
			c.fail(j, "winner rendering failed: "+firstLine(res.Err.Error()))
			return
		}
		runs[i] = res.Run
	}
	tmpl := spec.Config(cand, "", best.Instructions).Normalized()
	table := experiments.ConfigTable(tmpl, spec.Apps, runs).String()

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cp.State != StateRunning {
		return
	}
	j.cp.State = StateDone
	j.cp.BudgetExhausted = exhausted
	j.cp.Winner = &Winner{
		Candidate:     best.Candidate,
		Predictor:     cand.Predictor,
		TrainAtDetect: cand.TrainAtDetect,
		Config:        tmpl,
		Score:         best.Score,
		Table:         table,
	}
	j.cp.ResultDigest = resultDigest(j.cp.ID, j.cp.Trials, table)
	j.cp.ElapsedMS = elapsed.Milliseconds()
	c.persist(&j.cp)
	c.opt.Metrics.Add(CounterCompleted, 1)
}

// fail lands the job terminal StateFailed (unless already terminal).
func (c *Controller) fail(j *Job, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cp.State != StateRunning {
		return
	}
	j.cp.State = StateFailed
	j.cp.Error = msg
	c.persist(&j.cp)
	c.opt.Metrics.Add(CounterFailed, 1)
}

// saveElapsed persists accumulated wall time on an interrupted exit so the
// wall-clock budget spans process lives.
func (c *Controller) saveElapsed(j *Job, elapsed time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cp.ElapsedMS = elapsed.Milliseconds()
	c.persist(&j.cp)
}

// resultDigest fingerprints a finished search: the job identity, the full
// trial log and the winner table. Byte-identical across a fresh run, a
// cache-warm rerun and a kill-and-resume run of the same spec — the
// determinism contract the regression tests pin.
func resultDigest(id string, trials []Trial, table string) string {
	blob, err := json.Marshal(trials)
	if err != nil {
		return ""
	}
	h := sha256.New()
	h.Write([]byte("phast-jobresult/v1\n"))
	h.Write([]byte(id))
	h.Write([]byte{'\n'})
	h.Write(blob)
	h.Write([]byte{'\n'})
	h.Write([]byte(table))
	return hex.EncodeToString(h.Sum(nil))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
