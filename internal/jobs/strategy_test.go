package jobs

import (
	"reflect"
	"testing"
)

// halvingSpec builds a normalized halving spec for rung-math tests.
func halvingSpec(eta, rungs, minInsts, insts int) Spec {
	return Spec{
		Strategy:     "halving",
		Halving:      Halving{Eta: eta, Rungs: rungs, MinInstructions: minInsts},
		Instructions: insts,
	}
}

// TestPlanRungs pins the successive-halving schedule: population shrinks by
// ceil(count/eta) per rung, the final rung runs at full fidelity, earlier
// rungs at 1/eta of the next, floored at min_instructions.
func TestPlanRungs(t *testing.T) {
	cases := []struct {
		name   string
		spec   Spec
		n      int
		counts []int
		insts  []int
	}{
		{
			name: "eta2 rungs3", spec: halvingSpec(2, 3, 2000, 8000), n: 12,
			counts: []int{12, 6, 3}, insts: []int{2000, 4000, 8000},
		},
		{
			name: "ceil promotion", spec: halvingSpec(2, 3, 2000, 8000), n: 9,
			counts: []int{9, 5, 3}, insts: []int{2000, 4000, 8000},
		},
		{
			name: "eta3", spec: halvingSpec(3, 2, 500, 9000), n: 10,
			counts: []int{10, 4}, insts: []int{3000, 9000},
		},
		{
			name: "min floor", spec: halvingSpec(2, 3, 2000, 3000), n: 4,
			counts: []int{4, 2, 1}, insts: []int{2000, 2000, 3000},
		},
		{
			name: "single rung halving", spec: halvingSpec(2, 1, 2000, 5000), n: 7,
			counts: []int{7}, insts: []int{5000},
		},
		{
			name: "grid is one full rung",
			spec: Spec{Strategy: "grid", Instructions: 5000}, n: 7,
			counts: []int{7}, insts: []int{5000},
		},
		{
			name: "deep schedule", spec: halvingSpec(2, 4, 500, 16000), n: 16,
			counts: []int{16, 8, 4, 2}, insts: []int{2000, 4000, 8000, 16000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := planRungs(tc.spec, tc.n)
			if len(plan) != len(tc.counts) {
				t.Fatalf("got %d rungs, want %d (%+v)", len(plan), len(tc.counts), plan)
			}
			for i := range plan {
				if plan[i].Count != tc.counts[i] || plan[i].Instructions != tc.insts[i] {
					t.Errorf("rung %d = {count %d, insts %d}, want {%d, %d}",
						i, plan[i].Count, plan[i].Instructions, tc.counts[i], tc.insts[i])
				}
			}
		})
	}
	if plan := planRungs(halvingSpec(2, 3, 2000, 8000), 0); plan != nil {
		t.Errorf("planRungs(0 candidates) = %+v, want nil", plan)
	}
}

// TestPlanCost pins the budget accounting: Σ count × instructions × apps.
func TestPlanCost(t *testing.T) {
	plan := planRungs(halvingSpec(2, 3, 2000, 8000), 12) // 12×2000 + 6×4000 + 3×8000 = 72000
	if got := planCost(plan, 2); got != 144_000 {
		t.Fatalf("planCost = %d, want 144000", got)
	}
	if got := planCost(nil, 3); got != 0 {
		t.Fatalf("planCost(nil) = %d, want 0", got)
	}
}

// TestPromote pins survivor selection on crafted score tables: top-keep by
// score, ties broken toward the lower candidate index, failures never
// promoted, result sorted ascending for deterministic trial order.
func TestPromote(t *testing.T) {
	cases := []struct {
		name   string
		scored []trialScore
		keep   int
		want   []int
	}{
		{
			name: "plain top2",
			scored: []trialScore{
				{cand: 0, score: 1.0}, {cand: 1, score: 3.0}, {cand: 2, score: 2.0},
			},
			keep: 2, want: []int{1, 2},
		},
		{
			name: "tie breaks to lower index",
			scored: []trialScore{
				{cand: 5, score: 2.0}, {cand: 1, score: 2.0}, {cand: 3, score: 2.0},
			},
			keep: 2, want: []int{1, 3},
		},
		{
			name: "failures filtered even when better",
			scored: []trialScore{
				{cand: 0, score: 9.0, failed: true}, {cand: 1, score: 1.0}, {cand: 2, score: 0.5},
			},
			keep: 2, want: []int{1, 2},
		},
		{
			name: "keep larger than survivors",
			scored: []trialScore{
				{cand: 0, score: 1.0, failed: true}, {cand: 1, score: 1.0},
			},
			keep: 3, want: []int{1},
		},
		{
			name:   "all failed",
			scored: []trialScore{{cand: 0, failed: true}, {cand: 1, failed: true}},
			keep:   1, want: []int{},
		},
		{
			name: "result ascending regardless of score order",
			scored: []trialScore{
				{cand: 7, score: 5.0}, {cand: 2, score: 4.0}, {cand: 4, score: 6.0},
			},
			keep: 3, want: []int{2, 4, 7},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := promote(tc.scored, tc.keep)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("promote = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSelectInitial pins the frontier entering rung 0: grid/halving keep
// candidate order (truncated at the budget), random draws a seeded
// permutation — deterministic per seed, different across seeds.
func TestSelectInitial(t *testing.T) {
	grid := Spec{Strategy: "grid"}
	if got := selectInitial(grid, 4); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("grid selection = %v", got)
	}
	grid.Budget.MaxConfigs = 2
	if got := selectInitial(grid, 4); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("budgeted grid selection = %v", got)
	}

	rnd := Spec{Strategy: "random", Seed: 7, Budget: Budget{MaxConfigs: 5}}
	a := selectInitial(rnd, 20)
	b := selectInitial(rnd, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("random selection not deterministic per seed: %v vs %v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("random selection ignored budget: %v", a)
	}
	seen := map[int]bool{}
	for _, i := range a {
		if i < 0 || i >= 20 || seen[i] {
			t.Fatalf("random selection not a sample without replacement: %v", a)
		}
		seen[i] = true
	}
	rnd.Seed = 8
	if c := selectInitial(rnd, 20); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds drew the same sample %v", a)
	}
}
