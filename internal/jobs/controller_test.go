package jobs

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeBackend is a deterministic, simulation-free Backend: every config
// scores by a stable hash of its predictor spec, so searches resolve the
// same winner on every run without touching the simulator. An optional gate
// holds batches open (cancel/cap tests); an optional failPred makes one
// candidate's rows fail.
type fakeBackend struct {
	mu       sync.Mutex
	batches  int
	rows     int
	gate     chan struct{} // nil = never block
	entered  chan struct{} // signalled once per batch when it starts
	failPred string        // rows with this predictor fail
}

func (b *fakeBackend) RunConfigsDetailedContext(ctx context.Context, cfgs []sim.Config) []experiments.Result {
	b.mu.Lock()
	b.batches++
	b.rows += len(cfgs)
	entered, gate := b.entered, b.gate
	b.mu.Unlock()
	if entered != nil {
		select {
		case entered <- struct{}{}:
		default:
		}
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	out := make([]experiments.Result, len(cfgs))
	for i, cfg := range cfgs {
		cfg = cfg.Normalized()
		out[i].Config = cfg
		if ctx.Err() != nil {
			out[i].Err = &sim.SimError{Kind: sim.ErrCancelled, Config: cfg, Err: ctx.Err()}
			continue
		}
		if b.failPred != "" && cfg.Predictor == b.failPred {
			out[i].Err = &sim.SimError{Kind: sim.ErrConfig, Config: cfg, Err: errors.New("fake failure")}
			continue
		}
		h := fnv.New32a()
		h.Write([]byte(cfg.Predictor))
		// Committed = instructions; cycles derived from the predictor hash,
		// so scores are distinct, stable, and fidelity-independent.
		out[i].Run = &stats.Run{
			Committed: uint64(cfg.Instructions),
			Cycles:    uint64(cfg.Instructions) * uint64(100+h.Sum32()%100) / 100,
		}
	}
	return out
}

func (b *fakeBackend) stats() (batches, rows int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.rows
}

func testController(t *testing.T, b Backend, opt Options) *Controller {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	opt.Backend = b
	if len(opt.Apps) == 0 {
		opt.Apps = []string{"511.povray", "541.leela"}
	}
	if opt.Instructions == 0 {
		opt.Instructions = 8000
	}
	c, err := NewController(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func testSpec() Spec {
	return Spec{
		Space:        Space{PhastTables: []int{1, 2, 4, 8}},
		Strategy:     "halving",
		Halving:      Halving{Eta: 2, Rungs: 2, MinInstructions: 2000},
		Instructions: 8000,
	}
}

// waitDone blocks until the job goroutine exits and returns the final
// status.
func waitDone(t *testing.T, c *Controller, id string) *Status {
	t.Helper()
	c.Wait(id)
	st, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestJobCompletes runs a halving search to completion on the fake backend
// and checks the schedule arithmetic, winner selection and digest.
func TestJobCompletes(t *testing.T) {
	b := &fakeBackend{}
	c := testController(t, b, Options{})
	st, err := c.Submit("acme", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.PlannedTrials != 6 || st.Rungs != 2 || st.Selected != 4 {
		t.Fatalf("planned = %+v", st)
	}
	st = waitDone(t, c, st.ID)
	if st.State != StateDone {
		t.Fatalf("state %s (error %q)", st.State, st.Error)
	}
	if st.CompletedTrials != 6 || st.FailedTrials != 0 {
		t.Fatalf("trials = %d/%d failed", st.CompletedTrials, st.FailedTrials)
	}
	if st.Winner == nil || st.Winner.Table == "" || st.ResultDigest == "" {
		t.Fatalf("winner missing: %+v", st)
	}
	// The winner must be one of the two final-rung survivors at full
	// fidelity, and Best must agree with it.
	if st.Best == nil || st.Best.Rung != 1 || st.Best.Candidate != st.Winner.Candidate {
		t.Fatalf("best %+v vs winner %+v", st.Best, st.Winner)
	}
	// Rung batches (2) + the winner's table re-render (1).
	if batches, rows := b.stats(); batches != 3 || rows != (4+2)*2+2 {
		t.Fatalf("backend saw %d batches / %d rows", batches, rows)
	}
}

// TestJobDeterministicAcrossControllers pins the regression contract: same
// spec + seed resolve to byte-identical winner table and result digest on a
// fresh controller, and an idempotent resubmission joins the finished job
// without any new backend work.
func TestJobDeterministicAcrossControllers(t *testing.T) {
	b1 := &fakeBackend{}
	c1 := testController(t, b1, Options{})
	st1, err := c1.Submit("acme", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st1 = waitDone(t, c1, st1.ID)

	b2 := &fakeBackend{}
	c2 := testController(t, b2, Options{})
	st2, err := c2.Submit("acme", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st2 = waitDone(t, c2, st2.ID)

	if st1.ID != st2.ID {
		t.Fatalf("same spec, different IDs: %s vs %s", st1.ID, st2.ID)
	}
	if st1.ResultDigest != st2.ResultDigest {
		t.Fatalf("result digests differ: %s vs %s", st1.ResultDigest, st2.ResultDigest)
	}
	if st1.Winner.Table != st2.Winner.Table {
		t.Fatalf("winner tables differ:\n%s\nvs\n%s", st1.Winner.Table, st2.Winner.Table)
	}

	// Idempotent resubmission: same job, no new work.
	before, _ := b1.stats()
	st3, err := c1.Submit("acme", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID != st1.ID || st3.State != StateDone {
		t.Fatalf("resubmit = %+v", st3)
	}
	if after, _ := b1.stats(); after != before {
		t.Fatalf("resubmission re-ran the search (%d -> %d batches)", before, after)
	}
}

// TestJobResume kills the controller mid-search (between rungs) and resumes
// it from the checkpoint with a fresh controller: the job completes with
// the same digest a straight-through run produces, and the resumed run only
// executes the rungs the first life had not finished.
func TestJobResume(t *testing.T) {
	// Reference digest from an uninterrupted run.
	ref := waitDoneSubmit(t, testController(t, &fakeBackend{}, Options{}), "acme", testSpec())

	dir := t.TempDir()
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	b1 := &fakeBackend{gate: gate, entered: entered}
	c1 := testController(t, b1, Options{Dir: dir})
	st, err := c1.Submit("acme", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	<-entered            // rung 0 batch started
	gate <- struct{}{}   // let rung 0 finish
	<-entered            // rung 1 batch started; rung 0 checkpoint is on disk
	c1.Close()           // "kill": cancels rung 1 mid-batch, checkpoint survives
	st, err = c1.Get(id) // still running on disk — mid-flight work
	if err != nil || st.State != StateRunning || st.NextRung != 1 {
		t.Fatalf("post-close status = %+v, err %v", st, err)
	}

	b2 := &fakeBackend{}
	c2 := testController(t, b2, Options{Dir: dir})
	if n := c2.ResumeAll(); n != 1 {
		t.Fatalf("resumed %d jobs, want 1", n)
	}
	st = waitDone(t, c2, id)
	if st.State != StateDone {
		t.Fatalf("resumed job state %s (error %q)", st.State, st.Error)
	}
	if st.ResultDigest != ref.ResultDigest || st.Winner.Table != ref.Winner.Table {
		t.Fatalf("resumed run diverged from reference:\n%s\nvs\n%s", st.ResultDigest, ref.ResultDigest)
	}
	// The second life only ran rung 1 (2 candidates × 2 apps) and the
	// winner render (2 rows) — rung 0 came from the checkpoint.
	if _, rows := b2.stats(); rows != 2*2+2 {
		t.Fatalf("resumed life executed %d rows, want 6", rows)
	}
}

func waitDoneSubmit(t *testing.T, c *Controller, tenant string, spec Spec) *Status {
	t.Helper()
	st, err := c.Submit(tenant, spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, c, st.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}
	return st
}

// TestCancelThenResubmitResumes: DELETE-style cancellation lands the job
// terminal with its checkpoint intact; resubmitting the same spec restarts
// it from that checkpoint and completes.
func TestCancelThenResubmitResumes(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	b := &fakeBackend{gate: gate, entered: entered}
	c := testController(t, b, Options{})
	st, err := c.Submit("acme", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	<-entered
	gate <- struct{}{} // rung 0 done
	<-entered          // rung 1 in flight
	st, err = c.Cancel(id)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("cancel = %+v, err %v", st, err)
	}
	c.Wait(id)

	// The fake keeps answering; drain the gate so the restarted run flows.
	b.mu.Lock()
	b.gate = nil
	b.mu.Unlock()
	st, err = c.Submit("acme", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, c, id)
	if st.State != StateDone {
		t.Fatalf("restarted job state %s (error %q)", st.State, st.Error)
	}
	if st.NextRung != 2 || st.CompletedTrials != 6 {
		t.Fatalf("restarted job progress = %+v", st)
	}
	// Cancelling a terminal job is a no-op.
	st, err = c.Cancel(id)
	if err != nil || st.State != StateDone {
		t.Fatalf("cancel-after-done = %+v, err %v", st, err)
	}
}

// TestTenantMaxActive is the satellite-fix table test: the submit path must
// refuse — with a typed *TenantBusyError carrying the boundary numbers —
// exactly when the tenant sits at the cap, and stay independent across
// tenants.
func TestTenantMaxActive(t *testing.T) {
	specN := func(n int) Spec { // distinct specs → distinct jobs
		s := testSpec()
		s.Seed = int64(n)
		return s
	}
	gate := make(chan struct{})
	b := &fakeBackend{gate: gate}
	c := testController(t, b, Options{TenantMaxActive: 2})

	cases := []struct {
		name    string
		tenant  string
		spec    Spec
		wantErr bool
	}{
		{"first job admitted", "acme", specN(1), false},
		{"second job admitted (at cap)", "acme", specN(2), false},
		{"third job refused (past cap)", "acme", specN(3), true},
		{"other tenant unaffected", "zeta", specN(1), false},
	}
	var ids []string
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := c.Submit(tc.tenant, tc.spec)
			if tc.wantErr {
				var tbe *TenantBusyError
				if !errors.As(err, &tbe) {
					t.Fatalf("err = %v, want *TenantBusyError", err)
				}
				if tbe.Tenant != tc.tenant || tbe.Active != 2 || tbe.Cap != 2 {
					t.Fatalf("boundary numbers wrong: %+v", tbe)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		})
	}
	// Resubmitting an already-running job joins it — never a cap error.
	if _, err := c.Submit("acme", specN(1)); err != nil {
		t.Fatalf("rejoin hit the cap: %v", err)
	}
	// Capacity frees when a job finishes.
	b.mu.Lock()
	b.gate = nil
	b.mu.Unlock()
	close(gate)
	for _, id := range ids {
		c.Wait(id)
	}
	if _, err := c.Submit("acme", specN(3)); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestJobFailures: a candidate whose rows fail is never promoted and never
// wins; if every candidate fails the job lands failed with a message.
func TestJobFailures(t *testing.T) {
	spec := Spec{
		Space:        Space{Predictors: []string{"storesets", "nosq"}},
		Instructions: 8000,
	}
	b := &fakeBackend{failPred: "storesets"}
	c := testController(t, b, Options{})
	st, err := c.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, c, st.ID)
	if st.State != StateDone || st.FailedTrials != 1 {
		t.Fatalf("state %s, failed %d (error %q)", st.State, st.FailedTrials, st.Error)
	}
	if st.Winner.Predictor != "nosq" {
		t.Fatalf("winner = %+v, want nosq", st.Winner)
	}

	all := &fakeBackend{failPred: "nosq"}
	c2 := testController(t, all, Options{})
	st2, err := c2.Submit("acme", Spec{Space: Space{Predictors: []string{"nosq"}}, Instructions: 8000})
	if err != nil {
		t.Fatal(err)
	}
	st2 = waitDone(t, c2, st2.ID)
	if st2.State != StateFailed || st2.Error == "" {
		t.Fatalf("all-failed job = %+v", st2)
	}
}

// TestWallClockBudget: a job over its wall budget finishes between rungs as
// done + budget_exhausted, with the best trial so far as winner.
func TestWallClockBudget(t *testing.T) {
	var now struct {
		sync.Mutex
		t time.Time
	}
	now.t = time.Unix(1000, 0)
	spec := testSpec()
	// Each look at the clock jumps it 10s, so the budget check before rung 0
	// sees 10s elapsed and the one before rung 1 sees 30s: a 15s budget lets
	// rung 0 run and stops the search at rung 1.
	spec.Budget.WallClockMS = 15_000
	b := &fakeBackend{}
	c := testController(t, b, Options{
		Now: func() time.Time {
			now.Lock()
			defer now.Unlock()
			now.t = now.t.Add(10 * time.Second)
			return now.t
		},
	})
	st, err := c.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, c, st.ID)
	if st.State != StateDone || !st.BudgetExhausted {
		t.Fatalf("budget-exhausted job = %+v", st)
	}
	// Only rung 0 ran; the winner is its best trial at rung-0 fidelity.
	if st.CompletedTrials != 4 || st.Winner == nil || st.Best.Rung != 0 {
		t.Fatalf("budget stop progress = %+v", st)
	}
	if st.ElapsedMS <= spec.Budget.WallClockMS {
		t.Fatalf("elapsed %dms not past the budget", st.ElapsedMS)
	}
}

// TestUnknownJob: Get and Cancel on an unknown ID return ErrUnknownJob.
func TestUnknownJob(t *testing.T) {
	c := testController(t, &fakeBackend{}, Options{})
	if _, err := c.Get("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Get err = %v", err)
	}
	if _, err := c.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Cancel err = %v", err)
	}
}

// TestListFilters: List("") sees every job, List(tenant) only that
// tenant's.
func TestListFilters(t *testing.T) {
	b := &fakeBackend{}
	c := testController(t, b, Options{})
	a := waitDoneSubmit(t, c, "acme", testSpec())
	z := waitDoneSubmit(t, c, "zeta", testSpec())
	if a.ID == z.ID {
		t.Fatalf("tenants share a job ID")
	}
	if got := len(c.List("")); got != 2 {
		t.Fatalf("List() = %d jobs", got)
	}
	if got := c.List("acme"); len(got) != 1 || got[0].ID != a.ID {
		t.Fatalf("List(acme) = %+v", got)
	}
}

// TestOnTrialObserver: every completed rung row reaches the observer under
// the submitting tenant, in batch order — the hook the server's results log
// rides.
func TestOnTrialObserver(t *testing.T) {
	var (
		mu   sync.Mutex
		seen []string
	)
	b := &fakeBackend{}
	c := testController(t, b, Options{OnTrial: func(tenant string, res experiments.Result) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, fmt.Sprintf("%s/%s/%s/%d", tenant, res.Config.App, res.Config.Predictor, res.Config.Instructions))
	}})
	waitDoneSubmit(t, c, "acme", testSpec())
	mu.Lock()
	defer mu.Unlock()
	// 4 candidates × 2 apps at rung 0 + 2 × 2 at rung 1; the winner
	// re-render is not a trial and must not reach the observer.
	if len(seen) != 12 {
		t.Fatalf("observer saw %d rows, want 12: %v", len(seen), seen)
	}
	if seen[0] != "acme/511.povray/phast-tables:1/4000" {
		t.Fatalf("first row = %s", seen[0])
	}
}
