// Package core implements PHAST (PatH-Aware STore-distance), the paper's
// contribution: a context-sensitive memory dependence predictor trained, on
// each conflict, with exactly the history that determines it — the N+1
// divergent branches covering the path from the conflicting store to the
// dependent load — and the store distance of that conflict.
//
// The cost-effective implementation (§IV-B) uses one 4-way table per
// history length in the geometric-like sequence (0, 2, 4, 6, 8, 12, 16, 32);
// lengths not in the sequence truncate to the next shorter one. Entries
// carry a 16-bit tag, a 7-bit store distance, a 4-bit confidence counter and
// 2 LRU bits; with 128 sets per table this is the paper's 14.5KB budget.
// UnlimitedPHAST (unlimited.go) is the aliasing-free study version.
package core

import (
	"repro/internal/histutil"
	"repro/internal/mdp"
)

// Histories is the paper's geometric-like history length sequence.
var Histories = []int{0, 2, 4, 6, 8, 12, 16, 32}

// Config sizes a PHAST predictor.
type Config struct {
	// Histories holds the per-table history lengths, ascending.
	Histories []int
	// Sets is the number of sets per table (power of two).
	Sets int
	// Ways is the table associativity.
	Ways int
	// TagBits is the partial tag width.
	TagBits int
	// ConfMax is the confidence ceiling (4-bit counter -> 15).
	ConfMax uint8
}

// DefaultConfig returns the Table II 14.5KB configuration.
func DefaultConfig() Config {
	return Config{Histories: Histories, Sets: 128, Ways: 4, TagBits: 16, ConfMax: 15}
}

// BudgetConfig scales the default configuration to roughly the given
// storage budget by varying sets per table — the Fig. 13 sweep. Budgets
// correspond to sets 32/64/128/256/512 ≈ 3.6/7.25/14.5/29/58 KB.
func BudgetConfig(sets int) Config {
	c := DefaultConfig()
	c.Sets = sets
	return c
}

// PHAST is the cost-effective predictor of §IV-B.
type PHAST struct {
	cfg    Config
	tables []*mdp.AssocTable

	// Incremental folds per table on the decode-time (prediction) history
	// register; training folds on demand from the register passed to it.
	foldsD []*histutil.Fold

	setBits int

	reads, writes uint64

	// lenHist counts trained conflicts per selected history length
	// (index = table number), for the Fig. 10-style accounting.
	lenHist []uint64
}

var _ mdp.Predictor = (*PHAST)(nil)

// New builds a PHAST predictor.
func New(cfg Config) *PHAST {
	if len(cfg.Histories) == 0 {
		panic("core: PHAST needs at least one history length")
	}
	for i := 1; i < len(cfg.Histories); i++ {
		if cfg.Histories[i] <= cfg.Histories[i-1] {
			panic("core: PHAST history lengths must be ascending")
		}
	}
	p := &PHAST{cfg: cfg, lenHist: make([]uint64, len(cfg.Histories))}
	for range cfg.Histories {
		p.tables = append(p.tables, mdp.NewAssocTable(cfg.Sets, cfg.Ways, cfg.TagBits))
	}
	for 1<<p.setBits < cfg.Sets {
		p.setBits++
	}
	return p
}

// NewDefault builds the 14.5KB paper configuration.
func NewDefault() *PHAST { return New(DefaultConfig()) }

// Name implements mdp.Predictor.
func (p *PHAST) Name() string { return "phast" }

// Bind implements mdp.Predictor: register one S+T-bit fold per table on both
// history registers (§IV-B: the history is folded until S+T bits remain).
func (p *PHAST) Bind(decode, commit *histutil.Reg) {
	width := p.setBits + p.cfg.TagBits
	if width > 64 {
		width = 64
	}
	for _, h := range p.cfg.Histories {
		p.foldsD = append(p.foldsD, decode.NewFold(h, width))
	}
	_ = commit // training folds on demand from the register passed to it
}

// indexTag combines the folded history with the hashed load PC (§IV-B): the
// low S folded bits perturb the index hash PC⊕(PC>>2)⊕(PC>>5), the high T
// bits perturb the tag hash (PC offset by 3 and 7).
func (p *PHAST) indexTag(pc uint64, folded uint64) (set uint32, tag uint32) {
	set = uint32((histutil.HashPC(pc) ^ folded) & uint64(p.cfg.Sets-1))
	tag = uint32((histutil.HashPCTag(pc) ^ (folded >> p.setBits)) & (1<<p.cfg.TagBits - 1))
	return set, tag
}

// foldWidth is the folded history width S+T of §IV-B.
func (p *PHAST) foldWidth() int {
	w := p.setBits + p.cfg.TagBits
	if w > 64 {
		w = 64
	}
	return w
}

// Predict implements mdp.Predictor: all tables are searched in parallel with
// their respective history lengths; among matches with non-zero confidence,
// the longest history wins.
func (p *PHAST) Predict(ld mdp.LoadInfo, _ *histutil.Reg) mdp.Prediction {
	p.reads += uint64(len(p.tables))
	for t := len(p.tables) - 1; t >= 0; t-- {
		set, tag := p.indexTag(ld.PC, p.foldsD[t].Value())
		if e, w := p.tables[t].Lookup(set, tag); e != nil {
			p.tables[t].Touch(set, w)
			if e.Conf > 0 {
				return mdp.Prediction{
					Kind: mdp.Distance, Dist: int(e.Dist),
					Provider: mdp.ProviderRef{Valid: true, Table: t, Set: set, Way: uint8(w), Tag: tag},
				}
			}
		}
	}
	return mdp.Prediction{Kind: mdp.NoDep}
}

// StoreDispatch implements mdp.Predictor (PHAST constrains only loads).
func (p *PHAST) StoreDispatch(mdp.StoreInfo) uint64 { return 0 }

// StoreCommit implements mdp.Predictor.
func (p *PHAST) StoreCommit(mdp.StoreInfo) {}

// tableFor selects the table whose length is the largest not exceeding the
// conflict's history length (the truncation rule of §IV-B).
func (p *PHAST) tableFor(histLen int) int {
	sel := 0
	for i, h := range p.cfg.Histories {
		if h <= histLen {
			sel = i
		}
	}
	return sel
}

// TrainViolation implements mdp.Predictor. The history length of the
// conflict is N+1, where N is the number of divergent branches between the
// store and the load — obtained from the decode-time copies of the global
// divergent-branch counter each of them carries (§IV-A2). The entry is
// written into the table for that length using the commit-time history.
func (p *PHAST) TrainViolation(ld mdp.LoadInfo, st mdp.StoreInfo, dist int, _ mdp.Outcome, hist *histutil.Reg) {
	if dist < 0 || dist > 127 {
		return // beyond the 7-bit distance field
	}
	histLen := int(ld.BranchCount-st.BranchCount) + 1
	t := p.tableFor(histLen)
	p.lenHist[t]++
	// Fold the training history from the register the core hands us: the
	// commit-time register at the load's commit, or the core's exact
	// reconstruction when training at detection (the §IV-A1 ablation).
	set, tag := p.indexTag(ld.PC, hist.Fold(p.cfg.Histories[t], p.foldWidth()))
	p.writes++
	if e, w := p.tables[t].Lookup(set, tag); e != nil {
		e.Dist = uint8(dist)
		e.Conf = p.cfg.ConfMax
		p.tables[t].Touch(set, w)
		return
	}
	p.tables[t].Insert(set, mdp.Entry{Valid: true, Tag: tag, Dist: uint8(dist), Conf: p.cfg.ConfMax})
}

// TrainCommit implements mdp.Predictor: if the load waited for the correct
// store the provider's confidence resets to the maximum; otherwise it is
// decremented, and at zero the entry stops predicting (§IV-A2).
func (p *PHAST) TrainCommit(_ mdp.LoadInfo, out mdp.Outcome, _ *histutil.Reg) {
	ref := out.Pred.Provider
	if !ref.Valid || !out.Waited {
		return
	}
	e := p.tables[ref.Table].At(ref.Set, int(ref.Way))
	if !e.Valid || e.Tag != ref.Tag {
		return // evicted since the prediction was made
	}
	p.writes++
	if out.TrueDep {
		e.Conf = p.cfg.ConfMax
	} else if e.Conf > 0 {
		e.Conf--
	}
}

// SizeBits implements mdp.Predictor: entries × (16-bit tag + 7-bit distance
// + 4-bit confidence + 2 LRU bits), Table II's 14.5KB at the default size.
func (p *PHAST) SizeBits() int {
	entries := len(p.tables) * p.cfg.Sets * p.cfg.Ways
	return entries * (p.cfg.TagBits + 7 + 4 + 2)
}

// Paths implements mdp.Predictor (finite predictor).
func (p *PHAST) Paths() int { return 0 }

// Accesses implements mdp.Predictor.
func (p *PHAST) Accesses() (uint64, uint64) { return p.reads, p.writes }

// LengthCounts returns trained conflicts per table (ascending history
// length), for history-length distribution reporting.
func (p *PHAST) LengthCounts() []uint64 {
	out := make([]uint64, len(p.lenHist))
	copy(out, p.lenHist)
	return out
}
