package core

import (
	"testing"
	"testing/quick"

	"repro/internal/histutil"
	"repro/internal/mdp"
)

func newBound(t *testing.T, cfg Config) (*PHAST, *histutil.Reg, *histutil.Reg) {
	t.Helper()
	p := New(cfg)
	d, c := histutil.NewReg(2048), histutil.NewReg(2048)
	p.Bind(d, c)
	return p, d, c
}

func TestDefaultSizeIsTableII(t *testing.T) {
	p := NewDefault()
	if kb := float64(p.SizeBits()) / 8192; kb != 14.5 {
		t.Errorf("PHAST size = %.3f KB, want 14.5 (Table II)", kb)
	}
}

func TestBudgetConfigSizes(t *testing.T) {
	// The Fig. 13 sweep: size scales linearly with sets per table.
	kb := func(sets int) float64 {
		return float64(New(BudgetConfig(sets)).SizeBits()) / 8192
	}
	if kb(64) != 7.25 || kb(256) != 29 {
		t.Errorf("budget sizes: 64 sets = %.2f KB (want 7.25), 256 sets = %.2f KB (want 29)",
			kb(64), kb(256))
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Histories: nil, Sets: 128, Ways: 4, TagBits: 16},
		{Histories: []int{0, 2, 2}, Sets: 128, Ways: 4, TagBits: 16},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid config should panic")
				}
			}()
			New(bad)
		}()
	}
}

func TestTableForTruncation(t *testing.T) {
	p := NewDefault() // lengths 0,2,4,6,8,12,16,32
	cases := map[int]int{
		0: 0, 1: 0, 2: 1, 3: 1, 4: 2,
		8: 4, 9: 4, 10: 4, 11: 4, // the paper's example: 9..11 use 8 branches
		12: 5, 16: 6, 31: 6, 32: 7, 100: 7,
	}
	for histLen, wantTable := range cases {
		if got := p.tableFor(histLen); got != wantTable {
			t.Errorf("tableFor(%d) = %d, want %d", histLen, got, wantTable)
		}
	}
}

func TestTrainPredictRoundTrip(t *testing.T) {
	p, d, c := newBound(t, DefaultConfig())
	// Build a path of 3 divergent branches.
	for i := 0; i < 3; i++ {
		e := histutil.NewEntry(false, i%2 == 0, uint64(0x10+i))
		d.Push(e)
		c.Push(e)
	}
	ld := mdp.LoadInfo{PC: 0x4000, BranchCount: 3, StoreCount: 10}
	if got := p.Predict(ld, d); got.Kind != mdp.NoDep {
		t.Fatal("cold PHAST should predict no dependence")
	}
	// Conflict with a store 1 divergent branch back: history length 2.
	st := mdp.StoreInfo{PC: 0x5000, BranchCount: 2, StoreIndex: 6}
	p.TrainViolation(ld, st, 3, mdp.Outcome{}, c)
	got := p.Predict(ld, d)
	if got.Kind != mdp.Distance || got.Dist != 3 {
		t.Fatalf("prediction = %+v, want distance 3", got)
	}
	if got.Provider.Table != 1 {
		t.Errorf("conflict with history length 2 should train table 1, got %d", got.Provider.Table)
	}
	counts := p.LengthCounts()
	if counts[1] != 1 {
		t.Errorf("length counts = %v, want one conflict at table 1", counts)
	}
}

func TestLongerHistoryWins(t *testing.T) {
	p, d, c := newBound(t, DefaultConfig())
	for i := 0; i < 8; i++ {
		e := histutil.NewEntry(false, true, uint64(i))
		d.Push(e)
		c.Push(e)
	}
	ld := mdp.LoadInfo{PC: 0x4000, BranchCount: 8, StoreCount: 20}
	// Train a short-history entry (length 1 -> table 0) and a longer one
	// (length 5 -> table 2, lengths 0,2,4): the longer match must provide.
	p.TrainViolation(ld, mdp.StoreInfo{BranchCount: 8, StoreIndex: 18}, 1, mdp.Outcome{}, c)
	p.TrainViolation(ld, mdp.StoreInfo{BranchCount: 4, StoreIndex: 15}, 4, mdp.Outcome{}, c)
	got := p.Predict(ld, d)
	if got.Kind != mdp.Distance || got.Dist != 4 {
		t.Fatalf("longest history must win: %+v", got)
	}
	if got.Provider.Table != 2 {
		t.Errorf("provider table = %d, want 2", got.Provider.Table)
	}
}

func TestConfidenceLifecycle(t *testing.T) {
	p, d, c := newBound(t, DefaultConfig())
	ld := mdp.LoadInfo{PC: 0x4000, StoreCount: 10}
	p.TrainViolation(ld, mdp.StoreInfo{BranchCount: 0, StoreIndex: 8}, 1, mdp.Outcome{}, c)
	pred := p.Predict(ld, d)
	if pred.Kind != mdp.Distance {
		t.Fatal("should predict after training")
	}
	// ConfMax false dependencies silence the entry (§IV-A2).
	for i := 0; i < int(DefaultConfig().ConfMax); i++ {
		p.TrainCommit(ld, mdp.Outcome{Pred: pred, Waited: true, TrueDep: false}, c)
	}
	if got := p.Predict(ld, d); got.Kind != mdp.NoDep {
		t.Error("zero confidence must disable the prediction")
	}
	// One correct wait resets confidence to the maximum.
	p.TrainViolation(ld, mdp.StoreInfo{BranchCount: 0, StoreIndex: 8}, 1, mdp.Outcome{}, c)
	pred = p.Predict(ld, d)
	p.TrainCommit(ld, mdp.Outcome{Pred: pred, Waited: true, TrueDep: true}, c)
	for i := 0; i < 3; i++ {
		p.TrainCommit(ld, mdp.Outcome{Pred: pred, Waited: true, TrueDep: false}, c)
	}
	if got := p.Predict(ld, d); got.Kind != mdp.Distance {
		t.Error("a correct wait should have reset confidence to the maximum")
	}
}

func TestDistanceFieldWidth(t *testing.T) {
	p, d, c := newBound(t, DefaultConfig())
	ld := mdp.LoadInfo{PC: 0x4000, StoreCount: 500}
	p.TrainViolation(ld, mdp.StoreInfo{StoreIndex: 100}, 399, mdp.Outcome{}, c)
	if got := p.Predict(ld, d); got.Kind != mdp.NoDep {
		t.Error("distances beyond 7 bits must not be trained")
	}
}

func TestPHASTPathSensitivity(t *testing.T) {
	// Two paths to the same load PC train different distances; predictions
	// must follow the live path. Property-checked over arbitrary path pairs.
	f := func(seed uint8) bool {
		p := New(DefaultConfig())
		d, c := histutil.NewReg(64), histutil.NewReg(64)
		p.Bind(d, c)
		// Each occurrence is a fixed prefix branch P followed by the path
		// branch (A or B), so the 2-entry context of the load is exactly
		// [P, A] or [P, B] on every walk.
		prefix := histutil.NewEntry(true, true, uint64(seed)+17)
		pathA := histutil.NewEntry(false, true, uint64(seed))
		pathB := histutil.NewEntry(false, false, uint64(seed)+1)

		var branchCount uint64
		push := func(e histutil.Entry) {
			d.Push(e)
			c.Push(e)
			branchCount++
		}
		occurrence := func(path histutil.Entry, dist int, train bool) mdp.Prediction {
			push(prefix)
			push(path)
			ld := mdp.LoadInfo{PC: 0x4000, BranchCount: branchCount, StoreCount: 10}
			pred := p.Predict(ld, d)
			if train {
				// One divergent branch (the path branch) between store and
				// load: history length 2.
				st := mdp.StoreInfo{PC: 0x5000, BranchCount: branchCount - 1,
					StoreIndex: 10 - 1 - uint64(dist)}
				p.TrainViolation(ld, st, dist, mdp.Outcome{}, c)
			}
			return pred
		}
		occurrence(pathA, 0, true)
		occurrence(pathB, 1, true)
		gotA := occurrence(pathA, 0, false)
		gotB := occurrence(pathB, 1, false)
		return gotA.Kind == mdp.Distance && gotA.Dist == 0 &&
			gotB.Kind == mdp.Distance && gotB.Dist == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnlimitedPHASTExactLengthTraining(t *testing.T) {
	u := NewUnlimitedPHAST(0)
	d, c := histutil.NewReg(2048), histutil.NewReg(2048)
	u.Bind(d, c)
	for i := 0; i < 10; i++ {
		e := histutil.NewEntry(false, i%2 == 0, uint64(i))
		d.Push(e)
		c.Push(e)
	}
	ld := mdp.LoadInfo{PC: 0x4000, BranchCount: 10, StoreCount: 30}
	// N = 4 divergent branches between store and load: trains at length 5.
	st := mdp.StoreInfo{PC: 0x5000, BranchCount: 6, StoreIndex: 25}
	u.TrainViolation(ld, st, 4, mdp.Outcome{}, c)
	counts := u.ConflictLengthCounts()
	if counts[5] != 1 {
		t.Errorf("conflict length counts: %v at 5, want 1", counts[5])
	}
	if got := u.Predict(ld, d); got.Kind != mdp.Distance || got.Dist != 4 {
		t.Fatalf("prediction = %+v", got)
	}
	if u.Paths() != 1 {
		t.Errorf("paths = %d, want 1", u.Paths())
	}
}

func TestUnlimitedPHASTMaxHistCap(t *testing.T) {
	u := NewUnlimitedPHAST(8)
	d, c := histutil.NewReg(2048), histutil.NewReg(2048)
	u.Bind(d, c)
	for i := 0; i < 40; i++ {
		e := histutil.NewEntry(false, true, uint64(i))
		d.Push(e)
		c.Push(e)
	}
	ld := mdp.LoadInfo{PC: 0x4000, BranchCount: 40, StoreCount: 50}
	st := mdp.StoreInfo{BranchCount: 10, StoreIndex: 45} // length 31 -> capped to 8
	u.TrainViolation(ld, st, 4, mdp.Outcome{}, c)
	if got := u.ConflictLengthCounts()[8]; got != 1 {
		t.Errorf("capped training should land at length 8, counts[8] = %d", got)
	}
	if got := u.Predict(ld, d); got.Kind != mdp.Distance {
		t.Error("capped predictor should still predict")
	}
}

func TestUnlimitedPHASTConfidence(t *testing.T) {
	u := NewUnlimitedPHAST(0)
	d, c := histutil.NewReg(64), histutil.NewReg(64)
	u.Bind(d, c)
	ld := mdp.LoadInfo{PC: 0x4000, BranchCount: 0, StoreCount: 10}
	u.TrainViolation(ld, mdp.StoreInfo{StoreIndex: 8}, 1, mdp.Outcome{}, c)
	pred := u.Predict(ld, d)
	for i := 0; i < 15; i++ {
		u.TrainCommit(ld, mdp.Outcome{Pred: pred, Waited: true, TrueDep: false}, c)
	}
	if got := u.Predict(ld, d); got.Kind != mdp.NoDep {
		t.Error("exhausted confidence must stop predicting")
	}
}

func TestPHASTAccountingSurfaces(t *testing.T) {
	p, d, c := newBound(t, DefaultConfig())
	ld := mdp.LoadInfo{PC: 0x4000, StoreCount: 10}
	p.Predict(ld, d)
	p.TrainViolation(ld, mdp.StoreInfo{StoreIndex: 8}, 1, mdp.Outcome{}, c)
	reads, writes := p.Accesses()
	if reads == 0 || writes == 0 {
		t.Error("access counters should move")
	}
	if p.Paths() != 0 {
		t.Error("finite PHAST reports no paths")
	}
	if p.StoreDispatch(mdp.StoreInfo{}) != 0 {
		t.Error("PHAST never serialises stores")
	}
	p.StoreCommit(mdp.StoreInfo{})
	counts := p.LengthCounts()
	sum := uint64(0)
	for _, n := range counts {
		sum += n
	}
	if sum != 1 {
		t.Errorf("length counts sum %d, want 1", sum)
	}
}

func TestPHASTFewTablesVariantStillLearns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Histories = cfg.Histories[:2] // lengths {0, 2} only
	p := New(cfg)
	d, c := histutil.NewReg(64), histutil.NewReg(64)
	p.Bind(d, c)
	ld := mdp.LoadInfo{PC: 0x4000, BranchCount: 20, StoreCount: 10}
	// A long-history conflict truncates to the longest available table.
	st := mdp.StoreInfo{BranchCount: 2, StoreIndex: 8}
	p.TrainViolation(ld, st, 1, mdp.Outcome{}, c)
	if got := p.Predict(ld, d); got.Kind != mdp.Distance {
		t.Error("truncated-history training should still hit")
	}
	if p.LengthCounts()[1] != 1 {
		t.Error("conflict should land in the longest table")
	}
}
