package core

import (
	"encoding/binary"
	"sort"

	"repro/internal/histutil"
	"repro/internal/mdp"
)

// UnlimitedPHAST is the §III-C study version: exact uncompressed histories
// in unbounded maps, so no aliasing is possible. Each conflict trains at its
// own exact history length (N+1); predictions probe, per load PC, exactly
// the lengths that PC has ever trained at and take the longest match. The
// optional MaxHist cap implements the Fig. 11 maximum-history sweep.
type UnlimitedPHAST struct {
	maxHist int
	confMax int

	entries map[string]*uEntry
	// lengths tracks, per load PC, the ascending history lengths with live
	// entries — bounding the probe set exactly as "performing a set of
	// searches" (§IV-A3) with a per-PC set of lengths.
	lengths map[uint64][]int

	// conflictLen counts unique conflicts by first-trained history length
	// (Fig. 10); index = length, last bucket = overflow.
	conflictLen []uint64

	reads, writes uint64
}

type uEntry struct {
	dist int
	conf int
}

var _ mdp.Predictor = (*UnlimitedPHAST)(nil)

// NewUnlimitedPHAST builds the study predictor. maxHist caps the tracked
// history length (0 means the history register capacity, i.e. unlimited for
// all practical purposes).
func NewUnlimitedPHAST(maxHist int) *UnlimitedPHAST {
	return &UnlimitedPHAST{
		maxHist:     maxHist,
		confMax:     15,
		entries:     map[string]*uEntry{},
		lengths:     map[uint64][]int{},
		conflictLen: make([]uint64, 513),
	}
}

// Name implements mdp.Predictor.
func (u *UnlimitedPHAST) Name() string { return "unlimited-phast" }

// Bind implements mdp.Predictor (exact histories need no folds).
func (u *UnlimitedPHAST) Bind(decode, commit *histutil.Reg) {}

func key(pc uint64, hist *histutil.Reg, n int) string {
	var pcb [8]byte
	binary.LittleEndian.PutUint64(pcb[:], pc)
	return string(pcb[:]) + hist.Key(n)
}

// Predict implements mdp.Predictor: probe every length this PC has trained
// at, longest first; first confident match wins.
func (u *UnlimitedPHAST) Predict(ld mdp.LoadInfo, hist *histutil.Reg) mdp.Prediction {
	lens := u.lengths[ld.PC]
	u.reads += uint64(len(lens))
	for i := len(lens) - 1; i >= 0; i-- {
		k := key(ld.PC, hist, lens[i])
		if e, ok := u.entries[k]; ok && e.conf > 0 {
			return mdp.Prediction{Kind: mdp.Distance, Dist: e.dist, ProviderKey: k}
		}
	}
	return mdp.Prediction{Kind: mdp.NoDep}
}

// StoreDispatch implements mdp.Predictor.
func (u *UnlimitedPHAST) StoreDispatch(mdp.StoreInfo) uint64 { return 0 }

// StoreCommit implements mdp.Predictor.
func (u *UnlimitedPHAST) StoreCommit(mdp.StoreInfo) {}

func (u *UnlimitedPHAST) capLen(histLen int, hist *histutil.Reg) int {
	if u.maxHist > 0 && histLen > u.maxHist {
		histLen = u.maxHist
	}
	if histLen > hist.Cap() {
		histLen = hist.Cap()
	}
	return histLen
}

// TrainViolation implements mdp.Predictor: train at exactly N+1 branches.
func (u *UnlimitedPHAST) TrainViolation(ld mdp.LoadInfo, st mdp.StoreInfo, dist int, _ mdp.Outcome, hist *histutil.Reg) {
	if dist < 0 {
		return
	}
	histLen := u.capLen(int(ld.BranchCount-st.BranchCount)+1, hist)
	k := key(ld.PC, hist, histLen)
	u.writes++
	if e, ok := u.entries[k]; ok {
		e.dist, e.conf = dist, u.confMax
		return
	}
	u.entries[k] = &uEntry{dist: dist, conf: u.confMax}
	if histLen < len(u.conflictLen)-1 {
		u.conflictLen[histLen]++
	} else {
		u.conflictLen[len(u.conflictLen)-1]++
	}
	lens := u.lengths[ld.PC]
	pos := sort.SearchInts(lens, histLen)
	if pos == len(lens) || lens[pos] != histLen {
		lens = append(lens, 0)
		copy(lens[pos+1:], lens[pos:])
		lens[pos] = histLen
		u.lengths[ld.PC] = lens
	}
}

// TrainCommit implements mdp.Predictor.
func (u *UnlimitedPHAST) TrainCommit(_ mdp.LoadInfo, out mdp.Outcome, _ *histutil.Reg) {
	if out.Pred.ProviderKey == "" || !out.Waited {
		return
	}
	e := u.entries[out.Pred.ProviderKey]
	if e == nil {
		return
	}
	u.writes++
	if out.TrueDep {
		e.conf = u.confMax
	} else if e.conf > 0 {
		e.conf--
	}
}

// SizeBits implements mdp.Predictor (unbounded).
func (u *UnlimitedPHAST) SizeBits() int { return 0 }

// Paths implements mdp.Predictor: distinct (PC, exact path) contexts — the
// Fig. 6b / Fig. 9 metric.
func (u *UnlimitedPHAST) Paths() int { return len(u.entries) }

// Accesses implements mdp.Predictor.
func (u *UnlimitedPHAST) Accesses() (uint64, uint64) { return u.reads, u.writes }

// ConflictLengthCounts returns unique conflicts per history length (index =
// length; the final bucket aggregates longer paths) — Fig. 10's data.
func (u *UnlimitedPHAST) ConflictLengthCounts() []uint64 {
	out := make([]uint64, len(u.conflictLen))
	copy(out, u.conflictLen)
	return out
}
