package repro

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/mdp"
	"repro/internal/oracle"
	"repro/internal/parsim"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// TestHeadlineOrdering is the repository's reproduction invariant: on a
// subset chosen to exercise each predictor's characteristic weakness, PHAST
// must beat Store Sets clearly and stay at or above NoSQ — the paper's
// headline result — while remaining within a few percent of the ideal
// oracle. Margins are generous so the test is robust to small calibration
// changes; EXPERIMENTS.md records the precise full-suite numbers.
func TestHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("headline ordering needs full-length runs")
	}
	apps := []string{"500.perlbench_3", "511.povray", "541.leela", "502.gcc_1", "519.lbm"}
	geo := func(pred string) float64 {
		ideal := make([]float64, len(apps))
		ratios := make([]float64, len(apps))
		for i, app := range apps {
			id, err := Simulate(Config{App: app, Predictor: "ideal", Instructions: 120_000})
			if err != nil {
				t.Fatal(err)
			}
			run, err := Simulate(Config{App: app, Predictor: pred, Instructions: 120_000})
			if err != nil {
				t.Fatal(err)
			}
			ideal[i] = id.IPC()
			ratios[i] = run.IPC() / id.IPC()
		}
		return GeoMean(ratios)
	}
	phast := geo("phast")
	storesets := geo("storesets")
	nosq := geo("nosq")
	t.Logf("IPC vs ideal: phast=%.4f nosq=%.4f storesets=%.4f", phast, nosq, storesets)
	if phast < 0.95 {
		t.Errorf("PHAST at %.3f of ideal; the paper's gap is ~1.5%%", phast)
	}
	if phast <= storesets {
		t.Errorf("PHAST (%.4f) must beat Store Sets (%.4f)", phast, storesets)
	}
	if phast < nosq-0.01 {
		t.Errorf("PHAST (%.4f) must stay at or above NoSQ (%.4f)", phast, nosq)
	}
}

// TestIntervalParallelBitExact extends the metamorphic matrix (see
// internal/oracle/metamorphic_test.go) to interval-parallel execution:
// for every predictor family × app cell, the 4-interval plan run with
// Workers=4 must reproduce, byte for byte, the stitched stats and
// per-interval counters of the same plan run with Workers=1 — and both
// must chain onto the sequential in-order oracle digest. Each interval
// runs under full per-retirement oracle verification.
func TestIntervalParallelBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("the full matrix is long; interval properties are covered by internal/parsim in -short")
	}
	const n = 20000
	preds := []string{"phast", "storesets", "storevector", "perceptron-mdp", "none", "unlimited-phast"}
	apps := []string{"511.povray", "519.lbm", "502.gcc_1", "541.leela"}
	for _, app := range apps {
		tr, err := sim.TraceFor(app, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.Run(tr).Digest()
		for _, pred := range preds {
			pred := pred
			t.Run(app+"/"+pred, func(t *testing.T) {
				job := parsim.Job{
					Machine:      config.AlderLake(),
					Options:      pipeline.DefaultOptions(),
					NewPredictor: func() (mdp.Predictor, error) { return sim.NewPredictor(pred) },
				}
				plan := parsim.Plan{Intervals: 4, Warmup: 2000, Workers: 1, Verify: true}
				serial, err := parsim.Run(context.Background(), tr, job, plan)
				if err != nil {
					t.Fatal(err)
				}
				plan.Workers = 4
				parallel, err := parsim.Run(context.Background(), tr, job, plan)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial.Run, parallel.Run) {
					t.Errorf("stitched stats differ between Workers=1 and Workers=4:\n%+v\n%+v",
						serial.Run, parallel.Run)
				}
				if !reflect.DeepEqual(serial.Intervals, parallel.Intervals) {
					t.Errorf("per-interval stats differ between Workers=1 and Workers=4")
				}
				if serial.Digest != want || parallel.Digest != want {
					t.Errorf("digest serial %#x / parallel %#x, want sequential %#x",
						serial.Digest, parallel.Digest, want)
				}
			})
		}
	}
}

// TestIntervalParallelFacade covers the same property through the public
// facade on a pair of matrix cells: an interval-parallel Simulate call is
// deterministic, oracle-stamped, and architecturally identical (committed
// micro-ops, loads, stores) to the sequential run.
func TestIntervalParallelFacade(t *testing.T) {
	for _, cell := range []Config{
		{App: "511.povray", Predictor: "phast"},
		{App: "502.gcc_1", Predictor: "storesets"},
	} {
		cell.Instructions = 20000
		seq, err := Simulate(cell)
		if err != nil {
			t.Fatal(err)
		}
		cell.Intervals = 4
		a, err := Simulate(cell)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(cell)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s/%s: interval runs differ across invocations", cell.App, cell.Predictor)
		}
		if a.OracleDigest == 0 {
			t.Errorf("%s/%s: missing oracle digest", cell.App, cell.Predictor)
		}
		if a.Committed != seq.Committed || a.Loads != seq.Loads || a.Stores != seq.Stores {
			t.Errorf("%s/%s: architectural stream differs from the sequential run", cell.App, cell.Predictor)
		}
	}
}
