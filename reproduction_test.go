package repro

import "testing"

// TestHeadlineOrdering is the repository's reproduction invariant: on a
// subset chosen to exercise each predictor's characteristic weakness, PHAST
// must beat Store Sets clearly and stay at or above NoSQ — the paper's
// headline result — while remaining within a few percent of the ideal
// oracle. Margins are generous so the test is robust to small calibration
// changes; EXPERIMENTS.md records the precise full-suite numbers.
func TestHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("headline ordering needs full-length runs")
	}
	apps := []string{"500.perlbench_3", "511.povray", "541.leela", "502.gcc_1", "519.lbm"}
	geo := func(pred string) float64 {
		ideal := make([]float64, len(apps))
		ratios := make([]float64, len(apps))
		for i, app := range apps {
			id, err := Simulate(Config{App: app, Predictor: "ideal", Instructions: 120_000})
			if err != nil {
				t.Fatal(err)
			}
			run, err := Simulate(Config{App: app, Predictor: pred, Instructions: 120_000})
			if err != nil {
				t.Fatal(err)
			}
			ideal[i] = id.IPC()
			ratios[i] = run.IPC() / id.IPC()
		}
		return GeoMean(ratios)
	}
	phast := geo("phast")
	storesets := geo("storesets")
	nosq := geo("nosq")
	t.Logf("IPC vs ideal: phast=%.4f nosq=%.4f storesets=%.4f", phast, nosq, storesets)
	if phast < 0.95 {
		t.Errorf("PHAST at %.3f of ideal; the paper's gap is ~1.5%%", phast)
	}
	if phast <= storesets {
		t.Errorf("PHAST (%.4f) must beat Store Sets (%.4f)", phast, storesets)
	}
	if phast < nosq-0.01 {
		t.Errorf("PHAST (%.4f) must stay at or above NoSQ (%.4f)", phast, nosq)
	}
}
