// Predictorapi: drive the simulator through phastd's HTTP API end-to-end —
// the integration surface a remote consumer uses — and prove the serving
// layer is a transparent facade: a run requested over the wire is
// byte-identical to the same config executed in-process.
//
// The example spawns the daemon on a random port, submits a single run and a
// small batch, checks /healthz and /metrics, and exits non-zero on any
// mismatch; `make api-smoke` (part of `make check`) runs it as the serving
// layer's acceptance smoke.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/sim"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"predictorapi:"}, v...)...)
	os.Exit(1)
}

func main() {
	// Spawn phastd's serving stack on a random port.
	runner := experiments.NewRunner(experiments.Options{Instructions: 20_000, KeepGoing: true})
	defer runner.Close()
	srv := server.New(runner, server.Options{
		DefaultInstructions: 20_000,
		Metrics:             runner.Metrics(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("phastd serving on", base)

	client := &http.Client{Timeout: 2 * time.Minute}
	cfg := sim.Config{App: "511.povray", Predictor: "phast", Instructions: 20_000}

	// One run over the wire...
	var viaHTTP server.RunResult
	postJSON(client, base+"/v1/runs", server.RunRequest{Config: cfg}, &viaHTTP)
	if viaHTTP.Run == nil {
		fatal("HTTP run returned no row")
	}
	// ...against the same config in-process, compared bit for bit.
	inProcess, err := sim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	wire, _ := json.Marshal(viaHTTP.Run)
	local, _ := json.Marshal(inProcess)
	if !bytes.Equal(wire, local) {
		fatal(fmt.Sprintf("server row differs from in-process run:\nhttp  %s\nlocal %s", wire, local))
	}
	fmt.Printf("single run ok: HTTP row == in-process row (IPC %.4f, %d cycles)\n",
		viaHTTP.Run.IPC(), viaHTTP.Run.Cycles)

	// A small sweep through /v1/batch: per-row outcomes, request order.
	batch := server.BatchRequest{Configs: []sim.Config{
		{App: "511.povray", Predictor: "phast"},
		{App: "511.povray", Predictor: "ideal"},
		{App: "511.povray", Predictor: "nosuchpredictor"}, // typed error row
	}}
	var batchResp server.BatchResponse
	postJSON(client, base+"/v1/batch", batch, &batchResp)
	if len(batchResp.Results) != 3 {
		fatal("batch returned", len(batchResp.Results), "rows, want 3")
	}
	if batchResp.Results[0].Run == nil || batchResp.Results[1].Run == nil {
		fatal("batch rows 0/1 must carry runs")
	}
	if batchResp.Results[2].Error == nil || batchResp.Results[2].Error.Kind != string(sim.ErrConfig) {
		fatal("batch row 2 must be a typed config error, got", batchResp.Results[2].Error)
	}
	speedup := batchResp.Results[0].Run.Speedup(batchResp.Results[1].Run)
	fmt.Printf("batch ok: phast reaches %.2f%% of ideal IPC; bad config -> typed %q row\n",
		100*speedup, batchResp.Results[2].Error.Kind)

	// Health and metrics round out the operational surface.
	resp, err := client.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		fatal("healthz:", resp.Status, err)
	}
	resp.Body.Close()
	var metrics server.MetricsResponse
	getJSON(client, base+"/metrics?format=json", &metrics)
	if metrics.Counters[server.CounterAccepted] < 2 {
		fatal("metrics report", metrics.Counters[server.CounterAccepted], "accepted requests, want >= 2")
	}
	fmt.Printf("healthz ok; metrics ok (%d requests, %d runs simulated)\n",
		metrics.Counters[server.CounterRequests], metrics.Counters["runs.simulated"])
}

func postJSON(client *http.Client, url string, req, out any) {
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal("POST", url, "->", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fatal(err)
	}
}

func getJSON(client *http.Client, url string, out any) {
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fatal(err)
	}
}
