// Predictorapi: drive a PHAST predictor directly through the mdp.Predictor
// interface, without the timing model — the integration surface a custom
// simulator would use. The scenario is the paper's Fig. 5: the same load
// conflicts with stores at distance 0 or 1 depending on the divergent path,
// and PHAST disambiguates with the path history.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/histutil"
	"repro/internal/mdp"
)

func main() {
	phast := core.NewDefault()
	decode := histutil.NewReg(64)
	commit := histutil.NewReg(64)
	phast.Bind(decode, commit)

	const loadPC, storePC = 0x1000, 0x2000

	// Two paths: branch taken -> the store distance is 0; not taken -> 1.
	push := func(taken bool) {
		dest := uint64(0x40)
		if !taken {
			dest = 0x44
		}
		e := histutil.NewEntry(false, taken, dest)
		decode.Push(e)
		commit.Push(e)
	}

	var seq, branchCount, storeCount uint64
	// runInstance plays one dynamic occurrence of the Fig. 5 code: the
	// divergent branch, the path's stores, then the load. If PHAST predicts
	// no dependence, the speculative load suffers a memory order violation
	// and the predictor trains at commit with the true conflicting store
	// and the N+1 history length — exactly the pipeline's protocol.
	runInstance := func(taken bool) mdp.Prediction {
		push(taken)
		branchCount++
		dist := 0
		if !taken {
			dist = 1
		}
		storeCount += uint64(dist + 1) // stores on this path, older than the load
		seq++
		ld := mdp.LoadInfo{PC: loadPC, Seq: seq, BranchCount: branchCount, StoreCount: storeCount}
		pred := phast.Predict(ld, decode)
		if pred.Kind == mdp.NoDep {
			st := mdp.StoreInfo{
				PC: storePC, Seq: seq - 1,
				BranchCount: branchCount - 1, // the divergent branch sits between store and load
				StoreIndex:  storeCount - 1 - uint64(dist),
			}
			phast.TrainViolation(ld, st, dist, mdp.Outcome{Pred: pred}, commit)
		}
		return pred
	}

	fmt.Println("warm-up (a missed prediction is a memory order violation, which trains PHAST):")
	for i, taken := range []bool{true, false, true, false, true, false} {
		p := runInstance(taken)
		fmt.Printf("  instance %d path taken=%-5t -> predicted=%t\n", i, taken, p.Kind == mdp.Distance)
	}

	fmt.Println("steady state (PHAST disambiguates the distance by path):")
	for _, taken := range []bool{true, false, false, true} {
		p := runInstance(taken)
		fmt.Printf("  path taken=%-5t -> dependent=%t distance=%d\n",
			taken, p.Kind == mdp.Distance, p.Dist)
	}
}
