// Quickstart: simulate one SPEC-like app on the Alder Lake configuration
// with PHAST, and compare against the ideal predictor.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.Config{
		App:          "511.povray",
		Predictor:    "phast",
		Instructions: 200_000,
	}
	res, err := repro.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Predictor = "ideal"
	ideal, err := repro.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("app: %s on %s\n", res.App, res.Machine)
	fmt.Printf("PHAST IPC:              %.4f\n", res.IPC())
	fmt.Printf("ideal IPC:              %.4f (PHAST at %.2f%% of ideal)\n",
		ideal.IPC(), 100*res.Speedup(ideal))
	fmt.Printf("memory order violations: %d (%.3f MPKI)\n",
		res.MemOrderViolations, res.ViolationMPKI())
	fmt.Printf("false dependencies:      %d (%.3f MPKI)\n",
		res.FalseDependencies, res.FalseDepMPKI())
	fmt.Printf("store-to-load forwards:  %d\n", res.Forwards)
}
