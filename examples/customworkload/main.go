// Customworkload: author a new workload against the workload VM and
// evaluate predictors on it. The program below is a small hash-join-like
// kernel: a build phase stores tuples into data-dependent buckets and a
// probe phase loads them back — occasionally hitting a bucket that a
// still-in-flight store wrote, exactly the conflict pattern MDP exists for.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/isa"
	"repro/internal/workload"
)

func init() {
	workload.Register(workload.Program{
		Name:        "900.hashjoin",
		DefaultSeed: 9001,
		Gen: func(e *Emitter) {
			const (
				buckets = 256
				table   = uint64(0x9_0000_0000)
				pcBase  = uint64(0x90_0000)
			)
			rng := e.RNG.Fork()
			for {
				// Build: store a tuple into a data-dependent bucket. The
				// bucket index comes from a load, so the store address
				// resolves late.
				b := uint64(rng.Intn(buckets))
				e.Load(pcBase, 5, 0, table+0x100000+b*8, 8) // index load -> r5
				e.ALU(pcBase+4, 5, 5, 0, 6)                 // hash latency
				e.Store(pcBase+8, 5, 9, table+b*8, 8)

				// Some independent work between build and probe.
				for i := 0; i < 6; i++ {
					e.ALU(pcBase+0x20+uint64(i)*4, 9, 9, 1, 1)
				}

				// Probe: usually a different bucket, sometimes the same one
				// (a true store→load dependence).
				p := uint64(rng.Intn(buckets))
				if rng.Bool(0.07) {
					p = b
				}
				e.Load(pcBase+0x60, 1, 0, table+p*8, 8)
				e.ALU(pcBase+0x64, 9, 9, 1, 1) // consume the probe result
				e.Cond(pcBase+0x68, 1, rng.Bool(0.9), pcBase)
			}
		},
	})
}

// Emitter is re-exported for readability of the generator above.
type Emitter = workload.Emitter

// Silence the unused-import check for isa, kept for documentation: register
// numbers in the generator are isa.Reg values.
var _ isa.Reg

func main() {
	for _, pred := range []string{"none", "storesets", "nosq", "phast", "ideal"} {
		res, err := repro.Simulate(repro.Config{
			App: "900.hashjoin", Predictor: pred, Instructions: 200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s IPC %.4f  violations %.3f MPKI  false deps %.3f MPKI\n",
			pred, res.IPC(), res.ViolationMPKI(), res.FalseDepMPKI())
	}
}
