// Compare: a predictor shoot-out over a subset of the suite, reproducing
// the style of the paper's Fig. 14/15 on a laptop-sized budget. The apps
// chosen exercise the behaviours the paper highlights: povray (path-driven
// conflicts), perlbench_3 (Store Sets pathology), leela (data-dependent
// conflicts), gcc (path explosion) and lbm (conflict-free streaming).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	apps := []string{"511.povray", "500.perlbench_3", "541.leela", "502.gcc_1", "519.lbm"}
	preds := append([]string{"none"}, repro.Predictors()...)

	ideal := map[string]*repro.Result{}
	for _, app := range apps {
		res, err := repro.Simulate(repro.Config{App: app, Predictor: "ideal", Instructions: 150_000})
		if err != nil {
			log.Fatal(err)
		}
		ideal[app] = res
	}

	t := stats.NewTable("IPC relative to ideal (150k instructions per run)",
		append([]string{"predictor"}, append(apps, "geomean")...)...)
	for _, pred := range preds {
		row := []interface{}{pred}
		ratios := make([]float64, 0, len(apps))
		for _, app := range apps {
			res, err := repro.Simulate(repro.Config{App: app, Predictor: pred, Instructions: 150_000})
			if err != nil {
				log.Fatal(err)
			}
			ratio := res.Speedup(ideal[app])
			ratios = append(ratios, ratio)
			row = append(row, ratio)
		}
		row = append(row, repro.GeoMean(ratios))
		t.AddRowf(row...)
	}
	fmt.Print(t)
}
