// Budgetsweep: the Fig. 13 experiment at example scale — how much storage
// does PHAST actually need? The paper's claim: even a 7.25KB PHAST beats
// every state-of-the-art predictor at any budget.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sim"
	"repro/internal/viz"
)

func main() {
	apps := []string{"511.povray", "500.perlbench_3", "502.gcc_1"}
	const n = 120_000

	ideal := map[string]float64{}
	for _, app := range apps {
		res, err := repro.Simulate(repro.Config{App: app, Predictor: "ideal", Instructions: n})
		if err != nil {
			log.Fatal(err)
		}
		ideal[app] = res.IPC()
	}

	geoVsIdeal := func(spec string) float64 {
		ratios := make([]float64, 0, len(apps))
		for _, app := range apps {
			res, err := repro.Simulate(repro.Config{App: app, Predictor: spec, Instructions: n})
			if err != nil {
				log.Fatal(err)
			}
			ratios = append(ratios, res.IPC()/ideal[app])
		}
		return repro.GeoMean(ratios)
	}

	chart := viz.BarChart{
		Title: "IPC vs ideal by predictor budget", Width: 46,
		Baseline: 1.0, Min: 0.9, Max: 1.01,
	}
	for _, spec := range []string{
		"phast:32", "phast:64", "phast:128", "phast:256",
		"storesets", "nosq", "mdptage",
	} {
		pred, err := sim.NewPredictor(spec)
		if err != nil {
			log.Fatal(err)
		}
		kb := float64(pred.SizeBits()) / 8192
		g := geoVsIdeal(spec)
		chart.Add(fmt.Sprintf("%-13s %5.2fKB", spec, kb), g)
	}
	fmt.Print(chart.String())
	fmt.Println("\nThe paper's Fig. 13 point: PHAST at a fraction of the baselines'")
	fmt.Println("storage already sits closer to the ideal predictor.")
}
