package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPISurface(t *testing.T) {
	if len(Apps()) < 20 {
		t.Errorf("suite has only %d apps", len(Apps()))
	}
	if len(Machines()) < 5 {
		t.Errorf("only %d machine generations", len(Machines()))
	}
	want := map[string]bool{"phast": false, "storesets": false, "nosq": false, "mdptage": false}
	for _, p := range Predictors() {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("Predictors() missing %q", p)
		}
	}
	if len(ExperimentNames()) < 17 {
		t.Errorf("only %d experiments", len(ExperimentNames()))
	}
}

func TestSimulateSmoke(t *testing.T) {
	res, err := Simulate(Config{App: "511.povray", Predictor: "phast", Instructions: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 30000 || res.IPC() <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestRunExperimentByName(t *testing.T) {
	var buf bytes.Buffer
	err := RunExperiment("table1", ExperimentOptions{
		Apps: []string{"519.lbm"}, Instructions: 10000, Out: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ROB/IQ/LQ/SQ") {
		t.Errorf("table1 output:\n%s", buf.String())
	}
	if err := RunExperiment("fig99", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestGeoMeanExported(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); got < 3.99 || got > 4.01 {
		t.Errorf("GeoMean = %f", got)
	}
}
